package nn

import (
	"fmt"
	"math"
	"math/rand"

	"acpsgd/internal/tensor"
)

// Embedding maps integer token ids (carried as float64 values in the input
// matrix) to learned vectors: input [batch, seq] of ids, output
// [batch, seq*dim]. Its weight is a (vocab, dim) matrix — exactly the
// embedding tensors that dominate BERT's gradient volume in the paper's
// traffic analysis.
type Embedding struct {
	name       string
	vocab, dim int
	w          *Param
	ids        []int
	y          *tensor.Matrix
	dx         *tensor.Matrix
}

var _ Layer = (*Embedding)(nil)

// NewEmbedding builds an embedding table initialized N(0, 1/sqrt(dim)).
func NewEmbedding(name string, vocab, dim int, rng *rand.Rand) *Embedding {
	w := tensor.New(vocab, dim)
	w.Randomize(rng, 1/math.Sqrt(float64(dim)))
	return &Embedding{
		name:  name,
		vocab: vocab,
		dim:   dim,
		w:     &Param{Name: name + ".weight", W: w, Grad: tensor.New(vocab, dim)},
	}
}

// Name returns the layer name.
func (e *Embedding) Name() string { return e.name }

// Params returns the embedding table.
func (e *Embedding) Params() []*Param { return []*Param{e.w} }

// Forward gathers rows of the table.
func (e *Embedding) Forward(x *tensor.Matrix) *tensor.Matrix {
	batch, seq := x.Rows, x.Cols
	if e.y == nil || e.y.Rows != batch || e.y.Cols != seq*e.dim {
		e.y = tensor.New(batch, seq*e.dim)
		e.dx = tensor.New(batch, seq)
		e.ids = make([]int, batch*seq)
	}
	for b := 0; b < batch; b++ {
		for s := 0; s < seq; s++ {
			id := int(x.At(b, s))
			if id < 0 || id >= e.vocab {
				panic(fmt.Sprintf("nn: %s token id %d out of range [0,%d)", e.name, id, e.vocab))
			}
			e.ids[b*seq+s] = id
			copy(e.y.Data[(b*seq+s)*e.dim:(b*seq+s+1)*e.dim], e.w.W.Data[id*e.dim:(id+1)*e.dim])
		}
	}
	return e.y
}

// Backward scatter-adds gradients into the table rows; the input gradient is
// zero (ids are not differentiable).
func (e *Embedding) Backward(dout *tensor.Matrix) *tensor.Matrix {
	total := len(e.ids)
	for p := 0; p < total; p++ {
		id := e.ids[p]
		drow := dout.Data[p*e.dim : (p+1)*e.dim]
		grow := e.w.Grad.Data[id*e.dim : (id+1)*e.dim]
		for i, v := range drow {
			grow[i] += v
		}
	}
	e.dx.Zero()
	return e.dx
}

// LayerNorm normalizes every dim-sized group of the feature axis (i.e. each
// sequence position) to zero mean and unit variance, then applies learned
// gain and bias. Both parameters are vectors, so they bypass low-rank
// compression like the paper's LayerNorm parameters.
type LayerNorm struct {
	name  string
	dim   int
	eps   float64
	gamma *Param
	beta  *Param

	xhat  *tensor.Matrix
	invSD []float64
	y     *tensor.Matrix
	dx    *tensor.Matrix
}

var _ Layer = (*LayerNorm)(nil)

// NewLayerNorm builds a LayerNorm over groups of dim features.
func NewLayerNorm(name string, dim int) *LayerNorm {
	gamma := tensor.New(1, dim)
	gamma.Fill(1)
	return &LayerNorm{
		name:  name,
		dim:   dim,
		eps:   1e-5,
		gamma: &Param{Name: name + ".gamma", W: gamma, Grad: tensor.New(1, dim), IsVector: true},
		beta:  &Param{Name: name + ".beta", W: tensor.New(1, dim), Grad: tensor.New(1, dim), IsVector: true},
	}
}

// Name returns the layer name.
func (l *LayerNorm) Name() string { return l.name }

// Params returns gamma then beta.
func (l *LayerNorm) Params() []*Param { return []*Param{l.gamma, l.beta} }

// Forward normalizes each position.
func (l *LayerNorm) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols%l.dim != 0 {
		panic(fmt.Sprintf("nn: %s width %d not a multiple of dim %d", l.name, x.Cols, l.dim))
	}
	groups := x.NumElems() / l.dim
	if l.y == nil || l.y.Rows != x.Rows || l.y.Cols != x.Cols {
		l.y = tensor.New(x.Rows, x.Cols)
		l.dx = tensor.New(x.Rows, x.Cols)
		l.xhat = tensor.New(x.Rows, x.Cols)
		l.invSD = make([]float64, groups)
	}
	for g := 0; g < groups; g++ {
		seg := x.Data[g*l.dim : (g+1)*l.dim]
		var mean float64
		for _, v := range seg {
			mean += v
		}
		mean /= float64(l.dim)
		var variance float64
		for _, v := range seg {
			d := v - mean
			variance += d * d
		}
		variance /= float64(l.dim)
		inv := 1 / math.Sqrt(variance+l.eps)
		l.invSD[g] = inv
		for i, v := range seg {
			xh := (v - mean) * inv
			l.xhat.Data[g*l.dim+i] = xh
			l.y.Data[g*l.dim+i] = xh*l.gamma.W.Data[i] + l.beta.W.Data[i]
		}
	}
	return l.y
}

// Backward applies the standard LayerNorm gradient.
func (l *LayerNorm) Backward(dout *tensor.Matrix) *tensor.Matrix {
	groups := dout.NumElems() / l.dim
	n := float64(l.dim)
	for g := 0; g < groups; g++ {
		var sumDxhat, sumDxhatXhat float64
		for i := 0; i < l.dim; i++ {
			d := dout.Data[g*l.dim+i]
			xh := l.xhat.Data[g*l.dim+i]
			l.gamma.Grad.Data[i] += d * xh
			l.beta.Grad.Data[i] += d
			dxh := d * l.gamma.W.Data[i]
			sumDxhat += dxh
			sumDxhatXhat += dxh * xh
		}
		inv := l.invSD[g]
		for i := 0; i < l.dim; i++ {
			d := dout.Data[g*l.dim+i]
			xh := l.xhat.Data[g*l.dim+i]
			dxh := d * l.gamma.W.Data[i]
			l.dx.Data[g*l.dim+i] = inv * (dxh - sumDxhat/n - xh*sumDxhatXhat/n)
		}
	}
	return l.dx
}

// MeanPool averages the sequence axis: [batch, seq*dim] → [batch, dim].
type MeanPool struct {
	name string
	dim  int
	seq  int
	y    *tensor.Matrix
	dx   *tensor.Matrix
}

var _ Layer = (*MeanPool)(nil)

// NewMeanPool builds a mean-pool over sequence positions of width dim.
func NewMeanPool(name string, dim int) *MeanPool { return &MeanPool{name: name, dim: dim} }

// Name returns the layer name.
func (m *MeanPool) Name() string { return m.name }

// Params returns nil.
func (m *MeanPool) Params() []*Param { return nil }

// Forward averages positions.
func (m *MeanPool) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols%m.dim != 0 {
		panic(fmt.Sprintf("nn: %s width %d not a multiple of dim %d", m.name, x.Cols, m.dim))
	}
	m.seq = x.Cols / m.dim
	if m.y == nil || m.y.Rows != x.Rows {
		m.y = tensor.New(x.Rows, m.dim)
		m.dx = tensor.New(x.Rows, x.Cols)
	}
	m.y.Zero()
	inv := 1 / float64(m.seq)
	for b := 0; b < x.Rows; b++ {
		for s := 0; s < m.seq; s++ {
			seg := x.Data[b*x.Cols+s*m.dim : b*x.Cols+(s+1)*m.dim]
			for i, v := range seg {
				m.y.Data[b*m.dim+i] += v * inv
			}
		}
	}
	return m.y
}

// Backward spreads the gradient uniformly over positions.
func (m *MeanPool) Backward(dout *tensor.Matrix) *tensor.Matrix {
	inv := 1 / float64(m.seq)
	for b := 0; b < dout.Rows; b++ {
		for s := 0; s < m.seq; s++ {
			for i := 0; i < m.dim; i++ {
				m.dx.Data[b*m.dx.Cols+s*m.dim+i] = dout.Data[b*m.dim+i] * inv
			}
		}
	}
	return m.dx
}

// SelfAttention is single-head scaled dot-product attention over
// [batch, seq*dim] inputs with square (dim, dim) projection matrices — the
// shape family the low-rank compressors factorize in BERT.
type SelfAttention struct {
	name string
	dim  int

	wq, wk, wv, wo *Param

	// per-batch caches (seq x dim etc.), reallocated when shape changes
	x, q, k, v, att, ctx []*tensor.Matrix
	scores               []*tensor.Matrix
	y                    *tensor.Matrix
	dx                   *tensor.Matrix
	seq                  int
}

var _ Layer = (*SelfAttention)(nil)

// NewSelfAttention builds the four projections with Xavier-style init.
func NewSelfAttention(name string, dim int, rng *rand.Rand) *SelfAttention {
	mk := func(suffix string) *Param {
		w := tensor.New(dim, dim)
		w.Randomize(rng, 1/math.Sqrt(float64(dim)))
		return &Param{Name: name + "." + suffix, W: w, Grad: tensor.New(dim, dim)}
	}
	return &SelfAttention{
		name: name,
		dim:  dim,
		wq:   mk("wq"), wk: mk("wk"), wv: mk("wv"), wo: mk("wo"),
	}
}

// Name returns the layer name.
func (a *SelfAttention) Name() string { return a.name }

// Params returns the projections in Q, K, V, O order.
func (a *SelfAttention) Params() []*Param { return []*Param{a.wq, a.wk, a.wv, a.wo} }

func (a *SelfAttention) ensure(batch, seq int) {
	if len(a.x) == batch && a.seq == seq {
		return
	}
	a.seq = seq
	mk := func(r, c int) []*tensor.Matrix {
		out := make([]*tensor.Matrix, batch)
		for i := range out {
			out[i] = tensor.New(r, c)
		}
		return out
	}
	a.x = mk(seq, a.dim)
	a.q = mk(seq, a.dim)
	a.k = mk(seq, a.dim)
	a.v = mk(seq, a.dim)
	a.att = mk(seq, seq)
	a.scores = mk(seq, seq)
	a.ctx = mk(seq, a.dim)
	a.y = tensor.New(batch, seq*a.dim)
	a.dx = tensor.New(batch, seq*a.dim)
}

// Forward computes softmax(QKᵀ/√d)·V·Woᵀ per batch element.
func (a *SelfAttention) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols%a.dim != 0 {
		panic(fmt.Sprintf("nn: %s width %d not a multiple of dim %d", a.name, x.Cols, a.dim))
	}
	batch := x.Rows
	seq := x.Cols / a.dim
	a.ensure(batch, seq)
	scale := 1 / math.Sqrt(float64(a.dim))
	for b := 0; b < batch; b++ {
		copy(a.x[b].Data, x.Data[b*x.Cols:(b+1)*x.Cols])
		tensor.MatMulTB(a.q[b], a.x[b], a.wq.W)
		tensor.MatMulTB(a.k[b], a.x[b], a.wk.W)
		tensor.MatMulTB(a.v[b], a.x[b], a.wv.W)
		tensor.MatMulTB(a.scores[b], a.q[b], a.k[b])
		a.scores[b].Scale(scale)
		softmaxRows(a.att[b], a.scores[b])
		tensor.MatMul(a.ctx[b], a.att[b], a.v[b])
		out := tensor.FromSlice(seq, a.dim, a.y.Data[b*seq*a.dim:(b+1)*seq*a.dim])
		tensor.MatMulTB(out, a.ctx[b], a.wo.W)
	}
	return a.y
}

// softmaxRows writes row-wise softmax of src into dst.
func softmaxRows(dst, src *tensor.Matrix) {
	for r := 0; r < src.Rows; r++ {
		row := src.Data[r*src.Cols : (r+1)*src.Cols]
		drow := dst.Data[r*dst.Cols : (r+1)*dst.Cols]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(v - maxV)
			drow[i] = e
			sum += e
		}
		inv := 1 / sum
		for i := range drow {
			drow[i] *= inv
		}
	}
}

// Backward propagates through the attention computation.
func (a *SelfAttention) Backward(dout *tensor.Matrix) *tensor.Matrix {
	batch := dout.Rows
	seq := a.seq
	scale := 1 / math.Sqrt(float64(a.dim))
	dctx := tensor.New(seq, a.dim)
	datt := tensor.New(seq, seq)
	dscore := tensor.New(seq, seq)
	dq := tensor.New(seq, a.dim)
	dk := tensor.New(seq, a.dim)
	dv := tensor.New(seq, a.dim)
	tmpWG := tensor.New(a.dim, a.dim)
	dxb := tensor.New(seq, a.dim)
	acc := tensor.New(seq, a.dim)
	for b := 0; b < batch; b++ {
		dy := tensor.FromSlice(seq, a.dim, dout.Data[b*seq*a.dim:(b+1)*seq*a.dim])

		// Y = C·Woᵀ: dWo += dYᵀ·C; dC = dY·Wo.
		tensor.MatMulTA(tmpWG, dy, a.ctx[b])
		a.wo.Grad.Add(tmpWG)
		tensor.MatMul(dctx, dy, a.wo.W)

		// C = A·V: dA = dC·Vᵀ; dV = Aᵀ·dC.
		tensor.MatMulTB(datt, dctx, a.v[b])
		tensor.MatMulTA(dv, a.att[b], dctx)

		// A = softmax(S): dS_ij = A_ij (dA_ij - sum_k dA_ik A_ik).
		for r := 0; r < seq; r++ {
			var dot float64
			for c := 0; c < seq; c++ {
				dot += datt.At(r, c) * a.att[b].At(r, c)
			}
			for c := 0; c < seq; c++ {
				dscore.Set(r, c, a.att[b].At(r, c)*(datt.At(r, c)-dot))
			}
		}
		dscore.Scale(scale)

		// S = Q·Kᵀ: dQ = dS·K; dK = dSᵀ·Q.
		tensor.MatMul(dq, dscore, a.k[b])
		tensor.MatMulTA(dk, dscore, a.q[b])

		// Q = X·Wqᵀ etc.: dW += dᵀ·X; dX += d·W.
		acc.Zero()
		for _, pr := range []struct {
			d *tensor.Matrix
			p *Param
		}{{dq, a.wq}, {dk, a.wk}, {dv, a.wv}} {
			tensor.MatMulTA(tmpWG, pr.d, a.x[b])
			pr.p.Grad.Add(tmpWG)
			tensor.MatMul(dxb, pr.d, pr.p.W)
			acc.Add(dxb)
		}
		copy(a.dx.Data[b*seq*a.dim:(b+1)*seq*a.dim], acc.Data)
	}
	return a.dx
}
