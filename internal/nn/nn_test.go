package nn

import (
	"math"
	"math/rand"
	"testing"

	"acpsgd/internal/tensor"
)

// numericalGrad computes d f / d m[i] by central differences.
func numericalGrad(f func() float64, m *tensor.Matrix, i int) float64 {
	const eps = 1e-5
	orig := m.Data[i]
	m.Data[i] = orig + eps
	fp := f()
	m.Data[i] = orig - eps
	fm := f()
	m.Data[i] = orig
	return (fp - fm) / (2 * eps)
}

// checkModelGradients verifies every parameter gradient and the input
// gradient of model against finite differences of the softmax-CE loss.
func checkModelGradients(t *testing.T, model *Model, x *tensor.Matrix, labels []int, tol float64) {
	t.Helper()
	loss := &SoftmaxCrossEntropy{}
	run := func() float64 {
		l, _ := loss.Forward(model.Forward(x), labels)
		return l
	}
	model.ZeroGrads()
	l, dlogits := loss.Forward(model.Forward(x), labels)
	if math.IsNaN(l) {
		t.Fatal("loss is NaN")
	}
	model.Backward(dlogits, nil)
	for _, p := range model.Params() {
		// Sample a few entries per tensor to keep runtime sane.
		n := p.W.NumElems()
		stride := n/7 + 1
		for i := 0; i < n; i += stride {
			want := numericalGrad(run, p.W, i)
			got := p.Grad.Data[i]
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("param %s[%d]: analytic %v vs numeric %v", p.Name, i, got, want)
			}
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model := NewModel(
		NewDense("fc1", 6, 5, rng),
		NewTanh("t1"),
		NewDense("fc2", 5, 3, rng),
	)
	x := tensor.New(4, 6)
	x.Randomize(rng, 1)
	checkModelGradients(t, model, x, []int{0, 1, 2, 1}, 1e-6)
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	model := NewModel(
		NewDense("fc1", 5, 8, rng),
		NewReLU("r1"),
		NewDense("fc2", 8, 4, rng),
	)
	x := tensor.New(3, 5)
	x.Randomize(rng, 1)
	checkModelGradients(t, model, x, []int{3, 0, 2}, 1e-5)
}

func TestConvGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	conv := NewConv2D("c1", 2, 5, 5, 3, 3, 3, 1, rng)
	f, h, w := conv.OutShape()
	if f != 3 || h != 5 || w != 5 {
		t.Fatalf("out shape %d %d %d", f, h, w)
	}
	model := NewModel(
		conv,
		NewReLU("r1"),
		NewDense("fc", conv.OutFeatures(), 3, rng),
	)
	x := tensor.New(2, 2*5*5)
	x.Randomize(rng, 1)
	checkModelGradients(t, model, x, []int{0, 2}, 1e-5)
}

func TestConvNoPaddingShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	conv := NewConv2D("c1", 1, 6, 6, 2, 3, 3, 0, rng)
	f, h, w := conv.OutShape()
	if f != 2 || h != 4 || w != 4 {
		t.Fatalf("out shape %d %d %d, want 2 4 4", f, h, w)
	}
	x := tensor.New(1, 36)
	x.Randomize(rng, 1)
	y := conv.Forward(x)
	if y.Cols != conv.OutFeatures() {
		t.Fatalf("forward width %d, want %d", y.Cols, conv.OutFeatures())
	}
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	conv := NewConv2D("c1", 1, 4, 4, 2, 3, 3, 1, rng)
	pool := NewMaxPool2("p1", 2, 4, 4)
	model := NewModel(
		conv,
		pool,
		NewDense("fc", pool.OutFeatures(), 2, rng),
	)
	x := tensor.New(2, 16)
	x.Randomize(rng, 1)
	checkModelGradients(t, model, x, []int{1, 0}, 1e-5)
}

func TestMaxPoolForwardValues(t *testing.T) {
	pool := NewMaxPool2("p", 1, 2, 2)
	x := tensor.FromSlice(1, 4, []float64{1, 5, 2, 3})
	y := pool.Forward(x)
	if y.NumElems() != 1 || y.Data[0] != 5 {
		t.Fatalf("pool output %v, want [5]", y.Data)
	}
	dout := tensor.FromSlice(1, 1, []float64{7})
	dx := pool.Backward(dout)
	want := []float64{0, 7, 0, 0}
	for i := range want {
		if dx.Data[i] != want[i] {
			t.Fatalf("pool backward %v, want %v", dx.Data, want)
		}
	}
}

func TestMaxPoolRejectsOddInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd input")
		}
	}()
	NewMaxPool2("p", 1, 3, 4)
}

func TestResidualGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	model := NewModel(
		NewDense("fc0", 6, 6, rng),
		NewResidual("res1",
			NewDense("res1.fc1", 6, 6, rng),
			NewTanh("res1.t"),
			NewDense("res1.fc2", 6, 6, rng),
		),
		NewDense("head", 6, 3, rng),
	)
	x := tensor.New(3, 6)
	x.Randomize(rng, 1)
	checkModelGradients(t, model, x, []int{0, 1, 2}, 1e-6)
}

func TestResidualShapeMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	res := NewResidual("bad", NewDense("fc", 4, 5, rng))
	x := tensor.New(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	res.Forward(x)
}

func TestBackwardHookOrderIsReverse(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	model := NewModel(
		NewDense("fc1", 4, 4, rng),
		NewReLU("r"),
		NewDense("fc2", 4, 2, rng),
	)
	x := tensor.New(2, 4)
	x.Randomize(rng, 1)
	loss := &SoftmaxCrossEntropy{}
	l, dlogits := loss.Forward(model.Forward(x), []int{0, 1})
	_ = l
	var order []string
	model.Backward(dlogits, func(p *Param) { order = append(order, p.Name) })
	want := []string{"fc2.bias", "fc2.weight", "fc1.bias", "fc1.weight"}
	if len(order) != len(want) {
		t.Fatalf("hook order %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("hook order %v, want %v", order, want)
		}
	}
}

func TestSoftmaxCrossEntropyKnownValues(t *testing.T) {
	loss := &SoftmaxCrossEntropy{}
	logits := tensor.FromSlice(1, 2, []float64{0, 0})
	l, d := loss.Forward(logits, []int{0})
	if math.Abs(l-math.Log(2)) > 1e-9 {
		t.Fatalf("loss %v, want ln2", l)
	}
	// d = probs - onehot = [0.5-1, 0.5] = [-0.5, 0.5]
	if math.Abs(d.Data[0]+0.5) > 1e-9 || math.Abs(d.Data[1]-0.5) > 1e-9 {
		t.Fatalf("dlogits %v", d.Data)
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	loss := &SoftmaxCrossEntropy{}
	logits := tensor.FromSlice(1, 3, []float64{1000, 999, -1000})
	l, d := loss.Forward(logits, []int{0})
	if math.IsNaN(l) || math.IsInf(l, 0) {
		t.Fatalf("unstable loss: %v", l)
	}
	for _, v := range d.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN gradient")
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice(3, 2, []float64{
		2, 1, // pred 0
		0, 3, // pred 1
		5, 4, // pred 0
	})
	if got := Accuracy(logits, []int{0, 1, 1}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("accuracy %v", got)
	}
	if Accuracy(tensor.New(0, 2), nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestModelParamsAndCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := NewModel(NewDense("fc", 3, 2, rng))
	b := NewModel(NewDense("fc", 3, 2, rng))
	if a.NumParams() != 3*2+2 {
		t.Fatalf("NumParams=%d", a.NumParams())
	}
	if err := b.CopyWeightsFrom(a); err != nil {
		t.Fatal(err)
	}
	for i := range a.Params() {
		pa, pb := a.Params()[i], b.Params()[i]
		for j := range pa.W.Data {
			if pa.W.Data[j] != pb.W.Data[j] {
				t.Fatal("weights not copied")
			}
		}
	}
	c := NewModel(NewDense("fc", 4, 2, rng))
	if err := c.CopyWeightsFrom(a); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestZeroGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	model := NewModel(NewDense("fc", 3, 2, rng))
	x := tensor.New(2, 3)
	x.Randomize(rng, 1)
	loss := &SoftmaxCrossEntropy{}
	_, d := loss.Forward(model.Forward(x), []int{0, 1})
	model.Backward(d, nil)
	model.ZeroGrads()
	for _, p := range model.Params() {
		for _, v := range p.Grad.Data {
			if v != 0 {
				t.Fatal("grads not zeroed")
			}
		}
	}
}

func TestTrainingReducesLossSingleWorker(t *testing.T) {
	// Sanity: plain SGD on a separable toy problem should cut the loss.
	rng := rand.New(rand.NewSource(11))
	model := NewModel(
		NewDense("fc1", 2, 16, rng),
		NewReLU("r1"),
		NewDense("fc2", 16, 2, rng),
	)
	loss := &SoftmaxCrossEntropy{}
	const batch = 32
	x := tensor.New(batch, 2)
	labels := make([]int, batch)
	for b := 0; b < batch; b++ {
		cls := b % 2
		labels[b] = cls
		x.Set(b, 0, rng.NormFloat64()+float64(cls*4-2))
		x.Set(b, 1, rng.NormFloat64())
	}
	first, _ := loss.Forward(model.Forward(x), labels)
	var last float64
	for step := 0; step < 60; step++ {
		model.ZeroGrads()
		l, d := loss.Forward(model.Forward(x), labels)
		last = l
		model.Backward(d, nil)
		for _, p := range model.Params() {
			p.W.AddScaled(-0.1, p.Grad)
		}
	}
	if last > first/4 {
		t.Fatalf("loss did not drop enough: %v -> %v", first, last)
	}
}
