package nn

import (
	"math"
	"math/rand"
	"testing"

	"acpsgd/internal/tensor"
)

// tokenInput builds a [batch, seq] matrix of token ids.
func tokenInput(rng *rand.Rand, batch, seq, vocab int) *tensor.Matrix {
	x := tensor.New(batch, seq)
	for i := range x.Data {
		x.Data[i] = float64(rng.Intn(vocab))
	}
	return x
}

func TestEmbeddingForwardGather(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	e := NewEmbedding("emb", 10, 4, rng)
	x := tensor.FromSlice(1, 3, []float64{2, 7, 2})
	y := e.Forward(x)
	if y.Rows != 1 || y.Cols != 12 {
		t.Fatalf("shape %dx%d", y.Rows, y.Cols)
	}
	for i := 0; i < 4; i++ {
		if y.Data[i] != e.Params()[0].W.At(2, i) {
			t.Fatal("first position should be row 2")
		}
		if y.Data[8+i] != e.Params()[0].W.At(2, i) {
			t.Fatal("repeated token should gather the same row")
		}
	}
}

func TestEmbeddingBackwardScatters(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	e := NewEmbedding("emb", 5, 2, rng)
	x := tensor.FromSlice(1, 2, []float64{3, 3}) // same token twice
	e.Forward(x)
	dout := tensor.FromSlice(1, 4, []float64{1, 2, 10, 20})
	e.Backward(dout)
	g := e.Params()[0].Grad
	if g.At(3, 0) != 11 || g.At(3, 1) != 22 {
		t.Fatalf("scatter-add wrong: %v", g.Data)
	}
	for r := 0; r < 5; r++ {
		if r == 3 {
			continue
		}
		if g.At(r, 0) != 0 || g.At(r, 1) != 0 {
			t.Fatal("untouched rows must stay zero")
		}
	}
}

func TestEmbeddingPanicsOnBadToken(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	e := NewEmbedding("emb", 4, 2, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Forward(tensor.FromSlice(1, 1, []float64{9}))
}

func TestLayerNormForwardStats(t *testing.T) {
	ln := NewLayerNorm("ln", 4)
	x := tensor.FromSlice(1, 8, []float64{1, 2, 3, 4, 10, 10, 10, 10})
	y := ln.Forward(x)
	// First group: normalized to mean 0, var ~1.
	var mean, variance float64
	for i := 0; i < 4; i++ {
		mean += y.Data[i]
	}
	mean /= 4
	for i := 0; i < 4; i++ {
		variance += (y.Data[i] - mean) * (y.Data[i] - mean)
	}
	variance /= 4
	if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-3 {
		t.Fatalf("first group mean %v var %v", mean, variance)
	}
	// Second group is constant: normalized output must be ~0 (eps guards).
	for i := 4; i < 8; i++ {
		if math.Abs(y.Data[i]) > 1e-3 {
			t.Fatalf("constant group should normalize to ~0: %v", y.Data[4:])
		}
	}
}

func TestLayerNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	model := NewModel(
		NewDense("fc", 6, 6, rng),
		NewLayerNorm("ln", 3),
		NewDense("head", 6, 3, rng),
	)
	x := tensor.New(3, 6)
	x.Randomize(rng, 1)
	checkModelGradients(t, model, x, []int{0, 1, 2}, 1e-5)
}

func TestMeanPoolForwardBackward(t *testing.T) {
	mp := NewMeanPool("pool", 2)
	x := tensor.FromSlice(1, 6, []float64{1, 2, 3, 4, 5, 6})
	y := mp.Forward(x)
	if y.Cols != 2 || math.Abs(y.Data[0]-3) > 1e-12 || math.Abs(y.Data[1]-4) > 1e-12 {
		t.Fatalf("mean pool wrong: %v", y.Data)
	}
	dout := tensor.FromSlice(1, 2, []float64{3, 6})
	dx := mp.Backward(dout)
	for s := 0; s < 3; s++ {
		if math.Abs(dx.Data[s*2]-1) > 1e-12 || math.Abs(dx.Data[s*2+1]-2) > 1e-12 {
			t.Fatalf("mean pool backward wrong: %v", dx.Data)
		}
	}
}

func TestSelfAttentionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	// Token pipeline: embedding → attention → pool → head. Finite
	// differences check every parameter including the attention
	// projections and the embedding table.
	model := NewModel(
		NewEmbedding("emb", 6, 4, rng),
		NewSelfAttention("attn", 4, rng),
		NewMeanPool("pool", 4),
		NewDense("head", 4, 3, rng),
	)
	x := tokenInput(rng, 2, 3, 6)
	checkModelGradients(t, model, x, []int{0, 2}, 1e-5)
}

func TestSelfAttentionResidualGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	model := NewModel(
		NewEmbedding("emb", 5, 4, rng),
		NewResidual("block", NewSelfAttention("attn", 4, rng)),
		NewLayerNorm("ln", 4),
		NewMeanPool("pool", 4),
		NewDense("head", 4, 2, rng),
	)
	x := tokenInput(rng, 2, 3, 5)
	checkModelGradients(t, model, x, []int{1, 0}, 1e-5)
}

func TestPositionwiseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	model := NewModel(
		NewEmbedding("emb", 5, 4, rng),
		NewResidual("ffn", NewPositionwise("pw", 4,
			NewDense("up", 4, 8, rng),
			NewReLU("relu"),
			NewDense("down", 8, 4, rng),
		)),
		NewMeanPool("pool", 4),
		NewDense("head", 4, 2, rng),
	)
	x := tokenInput(rng, 2, 3, 5)
	checkModelGradients(t, model, x, []int{0, 1}, 1e-5)
}

func TestPositionwiseShapeChange(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	pw := NewPositionwise("pw", 4, NewDense("fc", 4, 6, rng))
	x := tensor.New(2, 8) // batch 2, seq 2, dim 4
	x.Randomize(rng, 1)
	y := pw.Forward(x)
	if y.Rows != 2 || y.Cols != 12 {
		t.Fatalf("positionwise output %dx%d, want 2x12", y.Rows, y.Cols)
	}
	dout := tensor.New(2, 12)
	dout.Randomize(rng, 1)
	dx := pw.Backward(dout)
	if dx.Rows != 2 || dx.Cols != 8 {
		t.Fatalf("positionwise dx %dx%d, want 2x8", dx.Rows, dx.Cols)
	}
}

func TestSelfAttentionPermutationBehaviour(t *testing.T) {
	// Without positional encodings, mean-pooled single-head attention is
	// permutation-invariant: permuting the sequence must not change the
	// pooled output.
	rng := rand.New(rand.NewSource(28))
	emb := NewEmbedding("emb", 8, 4, rng)
	attn := NewSelfAttention("attn", 4, rng)
	pool := NewMeanPool("pool", 4)
	forward := func(tokens []float64) []float64 {
		x := tensor.FromSlice(1, len(tokens), tokens)
		y := pool.Forward(attn.Forward(emb.Forward(x)))
		out := make([]float64, y.Cols)
		copy(out, y.Data)
		return out
	}
	a := forward([]float64{1, 3, 5})
	b := forward([]float64{5, 1, 3})
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("permutation changed pooled output: %v vs %v", a, b)
		}
	}
}
