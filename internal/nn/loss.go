package nn

import (
	"fmt"
	"math"

	"acpsgd/internal/tensor"
)

// SoftmaxCrossEntropy couples the softmax activation with the cross-entropy
// loss, the standard classification head. Forward returns the mean loss over
// the batch and the gradient w.r.t. the logits (already scaled by 1/batch so
// downstream parameter gradients are batch means).
type SoftmaxCrossEntropy struct {
	probs *tensor.Matrix
}

// Forward computes loss and dlogits for integer class labels.
func (s *SoftmaxCrossEntropy) Forward(logits *tensor.Matrix, labels []int) (float64, *tensor.Matrix) {
	batch, classes := logits.Rows, logits.Cols
	if len(labels) != batch {
		panic(fmt.Sprintf("nn: %d labels for batch %d", len(labels), batch))
	}
	if s.probs == nil || s.probs.Rows != batch || s.probs.Cols != classes {
		s.probs = tensor.New(batch, classes)
	}
	var loss float64
	for b := 0; b < batch; b++ {
		row := logits.Data[b*classes : (b+1)*classes]
		prow := s.probs.Data[b*classes : (b+1)*classes]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - maxV)
			prow[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range prow {
			prow[j] *= inv
		}
		y := labels[b]
		if y < 0 || y >= classes {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, classes))
		}
		loss -= math.Log(prow[y] + 1e-30)
	}
	loss /= float64(batch)

	dlogits := tensor.New(batch, classes)
	invB := 1 / float64(batch)
	for b := 0; b < batch; b++ {
		prow := s.probs.Data[b*classes : (b+1)*classes]
		drow := dlogits.Data[b*classes : (b+1)*classes]
		for j, p := range prow {
			drow[j] = p * invB
		}
		drow[labels[b]] -= invB
	}
	return loss, dlogits
}

// Accuracy returns the fraction of rows whose argmax matches the label.
func Accuracy(logits *tensor.Matrix, labels []int) float64 {
	if logits.Rows == 0 {
		return 0
	}
	correct := 0
	for b := 0; b < logits.Rows; b++ {
		row := logits.Data[b*logits.Cols : (b+1)*logits.Cols]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		if best == labels[b] {
			correct++
		}
	}
	return float64(correct) / float64(logits.Rows)
}
