package nn

import (
	"fmt"
	"math/rand"

	"acpsgd/internal/tensor"
)

// Conv2D is a 2-D convolution (stride 1, configurable zero padding) over
// channel-major images flattened into the feature axis. Its kernel is stored
// as an (F, C*kh*kw) matrix — the natural matricization the paper applies
// before low-rank compression of convolutional gradients (§IV-C).
type Conv2D struct {
	name            string
	inC, inH, inW   int
	filters, kh, kw int
	pad             int
	outH, outW      int

	w *Param
	b *Param

	col   *tensor.Matrix // cached im2col of the last input
	y     *tensor.Matrix
	y2    *tensor.Matrix
	dout2 *tensor.Matrix
	dcol  *tensor.Matrix
	dx    *tensor.Matrix
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D builds a convolution layer. Input images are (inC, inH, inW);
// the layer produces (filters, outH, outW) with outH = inH + 2*pad - kh + 1.
func NewConv2D(name string, inC, inH, inW, filters, kh, kw, pad int, rng *rand.Rand) *Conv2D {
	outH := inH + 2*pad - kh + 1
	outW := inW + 2*pad - kw + 1
	if outH < 1 || outW < 1 {
		panic(fmt.Sprintf("nn: %s output shape %dx%d invalid", name, outH, outW))
	}
	w := tensor.New(filters, inC*kh*kw)
	heInit(w, inC*kh*kw, rng)
	return &Conv2D{
		name: name, inC: inC, inH: inH, inW: inW,
		filters: filters, kh: kh, kw: kw, pad: pad,
		outH: outH, outW: outW,
		w: &Param{Name: name + ".weight", W: w, Grad: tensor.New(filters, inC*kh*kw)},
		b: &Param{Name: name + ".bias", W: tensor.New(1, filters), Grad: tensor.New(1, filters), IsVector: true},
	}
}

// Name returns the layer name.
func (c *Conv2D) Name() string { return c.name }

// Params returns weight then bias.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// OutShape returns (channels, height, width) of the output feature map.
func (c *Conv2D) OutShape() (int, int, int) { return c.filters, c.outH, c.outW }

// OutFeatures returns filters*outH*outW.
func (c *Conv2D) OutFeatures() int { return c.filters * c.outH * c.outW }

// Forward computes the convolution via im2col + one matmul.
func (c *Conv2D) Forward(x *tensor.Matrix) *tensor.Matrix {
	batch := x.Rows
	if x.Cols != c.inC*c.inH*c.inW {
		panic(fmt.Sprintf("nn: %s input width %d, want %d", c.name, x.Cols, c.inC*c.inH*c.inW))
	}
	rows := batch * c.outH * c.outW
	ckk := c.inC * c.kh * c.kw
	if c.col == nil || c.col.Rows != rows {
		c.col = tensor.New(rows, ckk)
		c.y2 = tensor.New(rows, c.filters)
		c.y = tensor.New(batch, c.OutFeatures())
		c.dout2 = tensor.New(rows, c.filters)
		c.dcol = tensor.New(rows, ckk)
		c.dx = tensor.New(batch, x.Cols)
	}

	// im2col: row (b, oh, ow), column (ch, i, j) → input pixel (ch, oh+i-p, ow+j-p).
	for b := 0; b < batch; b++ {
		xrow := x.Data[b*x.Cols : (b+1)*x.Cols]
		for oh := 0; oh < c.outH; oh++ {
			for ow := 0; ow < c.outW; ow++ {
				crow := c.col.Data[((b*c.outH+oh)*c.outW+ow)*ckk : ((b*c.outH+oh)*c.outW+ow+1)*ckk]
				ci := 0
				for ch := 0; ch < c.inC; ch++ {
					for i := 0; i < c.kh; i++ {
						ih := oh + i - c.pad
						for j := 0; j < c.kw; j++ {
							iw := ow + j - c.pad
							if ih >= 0 && ih < c.inH && iw >= 0 && iw < c.inW {
								crow[ci] = xrow[ch*c.inH*c.inW+ih*c.inW+iw]
							} else {
								crow[ci] = 0
							}
							ci++
						}
					}
				}
			}
		}
	}

	tensor.MatMulTB(c.y2, c.col, c.w.W) // [rows, F]
	// Reorder [b*OH*OW, F] → [b, F*OH*OW] and add bias.
	hw := c.outH * c.outW
	for b := 0; b < batch; b++ {
		yrow := c.y.Data[b*c.y.Cols : (b+1)*c.y.Cols]
		for pos := 0; pos < hw; pos++ {
			y2row := c.y2.Data[(b*hw+pos)*c.filters : (b*hw+pos+1)*c.filters]
			for f := 0; f < c.filters; f++ {
				yrow[f*hw+pos] = y2row[f] + c.b.W.Data[f]
			}
		}
	}
	return c.y
}

// Backward computes dW, db and dx from the upstream gradient.
func (c *Conv2D) Backward(dout *tensor.Matrix) *tensor.Matrix {
	batch := dout.Rows
	hw := c.outH * c.outW
	// Reorder dout [b, F*OH*OW] → dout2 [b*OH*OW, F].
	for b := 0; b < batch; b++ {
		drow := dout.Data[b*dout.Cols : (b+1)*dout.Cols]
		for pos := 0; pos < hw; pos++ {
			d2row := c.dout2.Data[(b*hw+pos)*c.filters : (b*hw+pos+1)*c.filters]
			for f := 0; f < c.filters; f++ {
				d2row[f] = drow[f*hw+pos]
			}
		}
	}

	// dW = dout2ᵀ · col; db = column sums of dout2.
	tensor.MatMulTA(c.w.Grad, c.dout2, c.col)
	c.b.Grad.Zero()
	for r := 0; r < c.dout2.Rows; r++ {
		row := c.dout2.Data[r*c.filters : (r+1)*c.filters]
		for f, v := range row {
			c.b.Grad.Data[f] += v
		}
	}

	// dcol = dout2 · W, scattered back through the im2col map.
	tensor.MatMul(c.dcol, c.dout2, c.w.W)
	c.dx.Zero()
	ckk := c.inC * c.kh * c.kw
	for b := 0; b < batch; b++ {
		dxrow := c.dx.Data[b*c.dx.Cols : (b+1)*c.dx.Cols]
		for oh := 0; oh < c.outH; oh++ {
			for ow := 0; ow < c.outW; ow++ {
				crow := c.dcol.Data[((b*c.outH+oh)*c.outW+ow)*ckk : ((b*c.outH+oh)*c.outW+ow+1)*ckk]
				ci := 0
				for ch := 0; ch < c.inC; ch++ {
					for i := 0; i < c.kh; i++ {
						ih := oh + i - c.pad
						for j := 0; j < c.kw; j++ {
							iw := ow + j - c.pad
							if ih >= 0 && ih < c.inH && iw >= 0 && iw < c.inW {
								dxrow[ch*c.inH*c.inW+ih*c.inW+iw] += crow[ci]
							}
							ci++
						}
					}
				}
			}
		}
	}
	return c.dx
}

// MaxPool2 is a 2x2, stride-2 max pooling layer over channel-major images.
type MaxPool2 struct {
	name          string
	inC, inH, inW int
	outH, outW    int
	argmax        []int
	y             *tensor.Matrix
	dx            *tensor.Matrix
}

var _ Layer = (*MaxPool2)(nil)

// NewMaxPool2 builds a 2x2/stride-2 max-pool for (inC, inH, inW) inputs.
// Input height and width must be even.
func NewMaxPool2(name string, inC, inH, inW int) *MaxPool2 {
	if inH%2 != 0 || inW%2 != 0 {
		panic(fmt.Sprintf("nn: %s input %dx%d must be even", name, inH, inW))
	}
	return &MaxPool2{name: name, inC: inC, inH: inH, inW: inW, outH: inH / 2, outW: inW / 2}
}

// Name returns the layer name.
func (m *MaxPool2) Name() string { return m.name }

// Params returns nil.
func (m *MaxPool2) Params() []*Param { return nil }

// OutShape returns (channels, height, width) of the output.
func (m *MaxPool2) OutShape() (int, int, int) { return m.inC, m.outH, m.outW }

// OutFeatures returns channels*outH*outW.
func (m *MaxPool2) OutFeatures() int { return m.inC * m.outH * m.outW }

// Forward takes the max of each 2x2 window, remembering the winner.
func (m *MaxPool2) Forward(x *tensor.Matrix) *tensor.Matrix {
	batch := x.Rows
	outFeat := m.OutFeatures()
	if m.y == nil || m.y.Rows != batch {
		m.y = tensor.New(batch, outFeat)
		m.dx = tensor.New(batch, x.Cols)
		m.argmax = make([]int, batch*outFeat)
	}
	for b := 0; b < batch; b++ {
		xrow := x.Data[b*x.Cols : (b+1)*x.Cols]
		yrow := m.y.Data[b*outFeat : (b+1)*outFeat]
		for ch := 0; ch < m.inC; ch++ {
			for oh := 0; oh < m.outH; oh++ {
				for ow := 0; ow < m.outW; ow++ {
					best := -1
					bestV := 0.0
					for i := 0; i < 2; i++ {
						for j := 0; j < 2; j++ {
							idx := ch*m.inH*m.inW + (2*oh+i)*m.inW + (2*ow + j)
							if best == -1 || xrow[idx] > bestV {
								best = idx
								bestV = xrow[idx]
							}
						}
					}
					o := ch*m.outH*m.outW + oh*m.outW + ow
					yrow[o] = bestV
					m.argmax[b*outFeat+o] = best
				}
			}
		}
	}
	return m.y
}

// Backward routes gradients to the argmax positions.
func (m *MaxPool2) Backward(dout *tensor.Matrix) *tensor.Matrix {
	batch := dout.Rows
	outFeat := m.OutFeatures()
	m.dx.Zero()
	for b := 0; b < batch; b++ {
		drow := dout.Data[b*outFeat : (b+1)*outFeat]
		dxrow := m.dx.Data[b*m.dx.Cols : (b+1)*m.dx.Cols]
		for o, v := range drow {
			dxrow[m.argmax[b*outFeat+o]] += v
		}
	}
	return m.dx
}
