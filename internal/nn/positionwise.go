package nn

import (
	"fmt"

	"acpsgd/internal/tensor"
)

// Positionwise applies an inner layer stack independently to every dim-sized
// group of the feature axis by reshaping [batch, seq*dim] to
// [batch*seq, dim] — the transformer's position-wise feed-forward pattern.
type Positionwise struct {
	name    string
	dim     int
	inner   []Layer
	lastSeq int
}

var _ Layer = (*Positionwise)(nil)

// NewPositionwise wraps inner layers whose input width is dim.
func NewPositionwise(name string, dim int, inner ...Layer) *Positionwise {
	return &Positionwise{name: name, dim: dim, inner: inner}
}

// Name returns the layer name.
func (p *Positionwise) Name() string { return p.name }

// Params returns the inner parameters.
func (p *Positionwise) Params() []*Param {
	var out []*Param
	for _, l := range p.inner {
		out = append(out, l.Params()...)
	}
	return out
}

// Forward reshapes [batch, seq*dim] to [batch*seq, dim], applies the stack,
// and reshapes the result back to [batch, seq*outDim].
func (p *Positionwise) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols%p.dim != 0 {
		panic(fmt.Sprintf("nn: %s width %d not a multiple of dim %d", p.name, x.Cols, p.dim))
	}
	batch := x.Rows
	seq := x.Cols / p.dim
	p.lastSeq = seq
	y := tensor.FromSlice(batch*seq, p.dim, x.Data)
	for _, l := range p.inner {
		y = l.Forward(y)
	}
	if y.Rows != batch*seq {
		panic(fmt.Sprintf("nn: %s inner stack changed row count", p.name))
	}
	return tensor.FromSlice(batch, seq*y.Cols, y.Data)
}

// Backward reshapes the upstream gradient to [batch*seq, outDim],
// backpropagates through the stack, and reshapes the input gradient back to
// [batch, seq*dim].
func (p *Positionwise) Backward(dout *tensor.Matrix) *tensor.Matrix {
	batch := dout.Rows
	seq := p.lastSeq
	if seq == 0 || dout.Cols%seq != 0 {
		panic(fmt.Sprintf("nn: %s backward before forward or bad shape", p.name))
	}
	d := tensor.FromSlice(batch*seq, dout.Cols/seq, dout.Data)
	for i := len(p.inner) - 1; i >= 0; i-- {
		d = p.inner[i].Backward(d)
	}
	return tensor.FromSlice(batch, seq*d.Cols, d.Data)
}
