package nn

import (
	"math/rand"
	"testing"

	"acpsgd/internal/tensor"
)

// TestBackwardHookedOrdering pins the WFBP readiness contract the trainer
// builds on: parameter hooks fire in strict "last parameter first" order,
// each layer's hook fires after all of that layer's parameter hooks, and
// layer indices count down to 0 — so li == 0 marks the final gradient of
// the step.
func TestBackwardHookedOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewModel(
		NewDense("a", 4, 6, rng),
		NewReLU("r"),
		NewDense("b", 6, 5, rng),
		NewDense("c", 5, 3, rng),
	)
	x := tensor.New(2, 4)
	x.Randomize(rng, 1)
	dout := tensor.New(2, 3)
	dout.Randomize(rng, 1)
	m.Forward(x)

	type event struct {
		kind  string // "param" or "layer"
		name  string
		layer int
	}
	var events []event
	m.BackwardHooked(dout,
		func(p *Param) { events = append(events, event{kind: "param", name: p.Name}) },
		func(li int, l Layer) { events = append(events, event{kind: "layer", name: l.Name(), layer: li}) },
	)

	var want []event
	layers := m.Layers()
	for i := len(layers) - 1; i >= 0; i-- {
		ps := layers[i].Params()
		for j := len(ps) - 1; j >= 0; j-- {
			want = append(want, event{kind: "param", name: ps[j].Name})
		}
		want = append(want, event{kind: "layer", name: layers[i].Name(), layer: i})
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d", len(events), len(want))
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, events[i], want[i])
		}
	}
	if last := events[len(events)-1]; last.kind != "layer" || last.layer != 0 {
		t.Fatalf("final event must be layer 0 readiness, got %+v", last)
	}
}

// TestBackwardEqualsBackwardHooked: the legacy Backward entry point is the
// hook-less specialization of BackwardHooked; gradients must be identical.
func TestBackwardEqualsBackwardHooked(t *testing.T) {
	build := func() (*Model, *tensor.Matrix, *tensor.Matrix) {
		rng := rand.New(rand.NewSource(11))
		m := NewModel(NewDense("a", 3, 5, rng), NewReLU("r"), NewDense("b", 5, 2, rng))
		x := tensor.New(4, 3)
		x.Randomize(rng, 1)
		dout := tensor.New(4, 2)
		dout.Randomize(rng, 1)
		return m, x, dout
	}
	m1, x1, d1 := build()
	m1.Forward(x1)
	m1.Backward(d1, nil)
	m2, x2, d2 := build()
	m2.Forward(x2)
	m2.BackwardHooked(d2, nil, func(int, Layer) {})
	p1, p2 := m1.Params(), m2.Params()
	for i := range p1 {
		for j := range p1[i].Grad.Data {
			if p1[i].Grad.Data[j] != p2[i].Grad.Data[j] {
				t.Fatalf("param %s grad[%d] differs", p1[i].Name, j)
			}
		}
	}
}
