// Package bench defines the named micro-benchmark suite shared by the
// `go test -bench` harness (bench_test.go wraps every case under its
// traditional Benchmark* name) and by `acpbench -baseline`, which runs the
// same cases through testing.Benchmark and records ns/op, B/op and allocs/op
// into a BENCH_<date>.json perf baseline. Keeping one definition in a plain
// (non-test) package is what lets the baseline recorder and the regression
// diff agree on stable case names.
package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"acpsgd/internal/comm"
	"acpsgd/internal/compress"
	"acpsgd/internal/data"
	"acpsgd/internal/models"
	"acpsgd/internal/nn"
	"acpsgd/internal/sim"
	"acpsgd/internal/tensor"
	"acpsgd/internal/train"
)

// Case is one named micro-benchmark. Names are stable identifiers: they key
// the BENCH_*.json baselines, so renaming a case breaks regression diffs.
type Case struct {
	Name string
	F    func(b *testing.B)
}

// Suite returns the full micro-benchmark suite in a stable order.
func Suite() []Case {
	cases := []Case{
		{"MatMul256", benchMatMul256},
		{"MatMulTA256x64", benchMatMulTA256x64},
		{"MatMulTB256", benchMatMulTB256},
		{"Orthogonalize512x32", benchOrthogonalize512x32},
		{"RingAllReduce4x64k", allReduceCase(4, 64*1024)},
		{"RingAllReduce8x64k", allReduceCase(8, 64*1024)},
		{"RingAllReduce4x1M", allReduceCase(4, 1024*1024)},
		{"RingAllReduceAsync4x1M", benchAsyncAllReduce4x1M},
		{"TCPFrameCRC4x1M", benchTCPFrameCRC4x1M},
		{"PipelinedAllReduce4x1M", benchPipelinedAllReduce4x1M},
		{"AllGather4x64KB", benchAllGather4x64KB},
		{"Broadcast4x256k", benchBroadcast4x256k},
		{"SignEncode1M", benchSignEncode1M},
		{"SignDecode1M", benchSignDecode1M},
		{"SignDecode4x1M", gatherDecodeCase(1<<20, 4, func(r int) compress.GatherCompressor {
			return compress.NewSign(1<<20, false)
		})},
		{"TopKExact1M", benchTopKExact1M},
		{"TopKSampled1M", benchTopKSampled1M},
		{"TopKDecode4x1M", gatherDecodeCase(1<<20, 4, func(r int) compress.GatherCompressor {
			return compress.NewTopK(1<<20, 1<<10, compress.SelectExact, false, int64(r))
		})},
		{"DGCEncode1M", gatherEncodeCase(1<<20, func() compress.GatherCompressor {
			return compress.NewDGC(1<<20, 1<<10, 0, true, 1)
		})},
		{"DGCDecode4x1M", gatherDecodeCase(1<<20, 4, func(r int) compress.GatherCompressor {
			return compress.NewDGC(1<<20, 1<<10, 0, true, int64(r))
		})},
		{"QSGDEncode1M", gatherEncodeCase(1<<20, func() compress.GatherCompressor {
			return compress.NewQSGD(1<<20, 16, 1)
		})},
		{"QSGDDecode4x1M", gatherDecodeCase(1<<20, 4, func(r int) compress.GatherCompressor {
			return compress.NewQSGD(1<<20, 16, int64(r))
		})},
		{"TernGradDecode4x1M", gatherDecodeCase(1<<20, 4, func(r int) compress.GatherCompressor {
			return compress.NewTernGrad(1<<20, int64(r))
		})},
		{"PowerCompress512x512r4", benchPowerCompress},
		{"ACPCompress512x512r4", benchACPCompress},
		{"MiniVGGStep", benchMiniVGGStep},
		{"SimulateBERTACP32", benchSimulateBERTACP32},
		{"FleetEngine1000", benchFleetEngine1000},
	}
	for _, rate := range InterferenceRates {
		cases = append(cases, Case{
			Name: "AblationInterference/" + RateName(rate),
			F:    interferenceCase(rate),
		})
	}
	for _, alpha := range AlphaSeconds {
		cases = append(cases, Case{
			Name: "AblationAlpha/" + AlphaName(alpha),
			F:    alphaCase(alpha),
		})
	}
	for _, useEF := range []bool{true, false} {
		cases = append(cases, Case{
			Name: "AblationEF/" + EFName(useEF),
			F:    efCase(useEF),
		})
	}
	for _, sel := range Selections {
		cases = append(cases, Case{
			Name: "AblationSelection/" + sel.Name,
			F:    selectionCase(sel.S),
		})
	}
	for _, mode := range OverlapModes {
		cases = append(cases, Case{
			Name: "OverlapStep/" + mode.String(),
			F:    overlapStepCase(mode),
		})
	}
	for _, chunks := range PipelineChunkCounts {
		cases = append(cases, Case{
			Name: "PipelinedStep/chunks=" + strconv.Itoa(chunks),
			F:    pipelinedStepCase(chunks),
		})
	}
	return cases
}

// PipelineChunkCounts are the chunk counts the end-to-end pipelined-step
// bench sweeps: the unpipelined replay baseline and two pipelined depths.
var PipelineChunkCounts = []int{0, 4, 16}

// pipelinedStepCase measures one full synchronized training step of a
// 2-worker QSGD cluster on a bandwidth-injected in-process transport (16MB/s
// per link — size-proportional wire delay that costs no CPU, the beta term
// of the alpha-beta model). QSGD is the natural subject: its encode is a
// serial stochastic-rounding sweep and its decode a per-rank LUT expansion.
// The default 25MB fusion budget fuses the whole model into ONE buffer, so
// the unpipelined step serializes encode → wire → decode back to back at the
// end of backward — exactly the span tensor fusion creates and chunk
// pipelining reclaims (§III-B): with PipelineChunks>0 chunk c rides the wire
// while chunk c+1 is encoding and chunk c-1 is decoding. GOMAXPROCS and
// serial kernels are pinned as in overlapStepCase.
func pipelinedStepCase(chunks int) func(b *testing.B) {
	return func(b *testing.B) {
		const (
			workers  = 2
			features = 64
			hidden   = 256
			classes  = 10
		)
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(max(2*workers, runtime.GOMAXPROCS(0))))
		defer tensor.SetParallelism(tensor.SetParallelism(1))
		trainSet := data.GaussianMixture(31, 512, features, classes, 1.0)
		cfg := train.Config{
			Spec:           compress.MustSpec("qsgd"),
			Workers:        workers,
			BatchPerWorker: 4,
			Epochs:         1,
			Momentum:       0.9,
			Schedule:       train.Schedule{BaseLR: 0.05},
			PipelineChunks: chunks,
			Seed:           7,
			NewTransports: func(p int) ([]comm.Transport, error) {
				ts, err := comm.NewInprocGroup(p, 0)
				if err != nil {
					return nil, err
				}
				pacer := comm.NewBandwidthPacer(16e6)
				for i := range ts {
					ts[i] = pacer.Wrap(ts[i])
				}
				return ts, nil
			},
		}
		build := func(rng *rand.Rand) *nn.Model {
			return models.MLP(rng, features,
				hidden, hidden, hidden, hidden, hidden,
				hidden, hidden, hidden, hidden, hidden, classes)
		}
		cluster, err := train.NewCluster(cfg, build, trainSet)
		if err != nil {
			b.Fatal(err)
		}
		defer cluster.Close()
		if _, err := cluster.Step(); err != nil { // warm pools and compressor state
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cluster.Step(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchPipelinedAllReduce4x1M is RingAllReduce4x1M through the segment-
// pipelined schedule (8 segments): on a memory-speed transport it measures
// the tag/segmentation overhead of the pipelined protocol relative to the
// plain ring, which the committed baseline keeps honest.
func benchPipelinedAllReduce4x1M(b *testing.B) {
	const workers, elems, segments = 4, 1024 * 1024, 8
	transports, err := comm.NewInprocGroup(workers, 0)
	if err != nil {
		b.Fatal(err)
	}
	comms := make([]*comm.Communicator, workers)
	bufs := make([][]float64, workers)
	for r := range comms {
		comms[r] = comm.NewCommunicator(transports[r])
		bufs[r] = make([]float64, elems)
	}
	abort := func(r int) { transports[r].Close() }
	if err := runRanks(workers, abort, func(r int) error {
		return comms[r].AllReduceSumPipelined(bufs[r], segments)
	}); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(8 * elems))
	b.ResetTimer()
	var wg sync.WaitGroup
	for r := 0; r < workers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				if err := comms[r].AllReduceSumPipelined(bufs[r], segments); err != nil {
					b.Error(err)
					transports[r].Close()
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

// OverlapModes are the comm-launch schedules the end-to-end train-step bench
// sweeps: wait-free backprop vs. launch-after-backward. The two are
// bit-identical in results; the bench measures what overlap buys in
// wall-clock step time on a latency-injected transport.
var OverlapModes = []train.Overlap{train.OverlapOn, train.OverlapOff}

// overlapStepCase measures one full synchronized training step of a
// 2-worker deep-MLP cluster over in-process transports with 1ms injected
// per-hop latency — wire time that costs no CPU, like a real NIC, so the
// ring collectives are worth hiding behind backward. The configuration is
// deliberately shaped so overlap has something to hide:
//
//   - A deep stack of uniform layers with a small fusion budget makes one
//     bucket per weight matrix, sealing (and launching) throughout backward
//     rather than only at its end.
//   - Tensor kernels are pinned serial and GOMAXPROCS is raised above the
//     worker count, modeling one compute stream per "node" and leaving the
//     per-rank communication goroutines runnable the moment a message
//     lands — without a spare P their wakeups quantize to the preemption
//     interval and the overlap disappears into scheduler latency.
func overlapStepCase(mode train.Overlap) func(b *testing.B) {
	return func(b *testing.B) {
		const (
			workers  = 2
			features = 64
			hidden   = 256
			classes  = 10
		)
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(max(2*workers, runtime.GOMAXPROCS(0))))
		defer tensor.SetParallelism(tensor.SetParallelism(1))
		trainSet := data.GaussianMixture(31, 512, features, classes, 1.0)
		cfg := train.Config{
			Spec:           compress.MustSpec("ssgd"),
			Workers:        workers,
			BatchPerWorker: 32,
			Epochs:         1,
			Momentum:       0.9,
			Schedule:       train.Schedule{BaseLR: 0.05},
			BufferBytes:    16 * 1024,
			Overlap:        mode,
			Seed:           7,
			NewTransports: func(p int) ([]comm.Transport, error) {
				ts, err := comm.NewInprocGroup(p, 0)
				if err != nil {
					return nil, err
				}
				for i := range ts {
					ts[i] = comm.WithLatency(ts[i], time.Millisecond)
				}
				return ts, nil
			},
		}
		build := func(rng *rand.Rand) *nn.Model {
			return models.MLP(rng, features, hidden, hidden, hidden, hidden, hidden, hidden, classes)
		}
		cluster, err := train.NewCluster(cfg, build, trainSet)
		if err != nil {
			b.Fatal(err)
		}
		defer cluster.Close()
		if _, err := cluster.Step(); err != nil { // warm pools and compressor state
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cluster.Step(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchTCPFrameCRC4x1M is RingAllReduce4x1M over real loopback TCP, where
// every frame now carries a CRC32C trailer computed on send and verified on
// receive. Against the in-process RingAllReduce4x1M case it prices the whole
// wire-integrity path — framing, checksum generation, and verification — and
// the committed wirecrc baseline keeps that overhead from silently growing.
func benchTCPFrameCRC4x1M(b *testing.B) {
	const workers, elems = 4, 1024 * 1024
	transports, err := comm.NewTCPGroup(workers)
	if err != nil {
		b.Fatal(err)
	}
	comms := make([]*comm.Communicator, workers)
	bufs := make([][]float64, workers)
	for r := range comms {
		comms[r] = comm.NewCommunicator(transports[r])
		bufs[r] = make([]float64, elems)
	}
	defer transports[0].Close()
	abort := func(r int) { transports[r].Close() }
	// Warm the connections and buffer pools before timing.
	if err := runRanks(workers, abort, func(r int) error { return comms[r].AllReduceSum(bufs[r]) }); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(8 * elems))
	b.ResetTimer()
	var wg sync.WaitGroup
	for r := 0; r < workers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				if err := comms[r].AllReduceSum(bufs[r]); err != nil {
					b.Error(err)
					transports[r].Close()
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

// benchAsyncAllReduce4x1M is RingAllReduce4x1M through the handle-based
// async layer: each rank submits on its AsyncCommunicator and waits the
// Pending, measuring the launch-queue overhead over the raw collective.
func benchAsyncAllReduce4x1M(b *testing.B) {
	const workers, elems = 4, 1024 * 1024
	transports, err := comm.NewInprocGroup(workers, 0)
	if err != nil {
		b.Fatal(err)
	}
	asyncs := make([]*comm.AsyncCommunicator, workers)
	bufs := make([][]float64, workers)
	for r := range asyncs {
		asyncs[r] = comm.NewAsync(comm.NewCommunicator(transports[r]))
		bufs[r] = make([]float64, elems)
	}
	defer func() {
		transports[0].Close()
		for _, a := range asyncs {
			a.Close()
		}
	}()
	abort := func(r int) { transports[r].Close() }
	if err := runRanks(workers, abort, func(r int) error {
		return asyncs[r].AllReduceSumAsync(bufs[r]).Wait()
	}); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(8 * elems))
	b.ResetTimer()
	var wg sync.WaitGroup
	for r := 0; r < workers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				if err := asyncs[r].AllReduceSumAsync(bufs[r]).Wait(); err != nil {
					b.Error(err)
					transports[r].Close()
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

// EFName names the error-feedback ablation sub-benchmarks.
func EFName(useEF bool) string {
	if useEF {
		return "ef"
	}
	return "no-ef"
}

// Selections are the top-k selection strategies the selection ablation
// sweeps (footnote 2's motivation).
var Selections = []struct {
	Name string
	S    compress.Selection
}{
	{"exact", compress.SelectExact},
	{"sampled", compress.SelectSampled},
}

// efCase measures ACP-SGD compression throughput with or without error
// feedback on the real compressor.
func efCase(useEF bool) func(b *testing.B) {
	return func(b *testing.B) {
		const n, m, r = 256, 256, 4
		a := compress.NewACP(n, m, r, useEF, true, 1)
		grad := RandGrad(n * m)
		b.SetBytes(n * m * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			payload := a.Compress(i, grad)
			a.Finalize(i, payload, 1, grad)
		}
	}
}

// selectionCase measures one top-k selection strategy's encode cost.
func selectionCase(s compress.Selection) func(b *testing.B) {
	return func(b *testing.B) {
		const n = 1 << 18
		tk := compress.NewTopK(n, n/1000, s, false, 1)
		grad := RandGrad(n)
		b.SetBytes(n * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tk.Encode(i, grad)
		}
	}
}

// ByName returns the case with the given stable name.
func ByName(name string) (Case, error) {
	for _, c := range Suite() {
		if c.Name == name {
			return c, nil
		}
	}
	return Case{}, fmt.Errorf("bench: unknown case %q", name)
}

// InterferenceRates are the GPU interference sweep points of the
// BenchmarkAblationInterference sub-benchmarks (§III-C WFBP slowdown knob).
var InterferenceRates = []float64{0.5, 0.35, 0.22, 0.15}

// AlphaSeconds are the per-hop latency sweep points of the
// BenchmarkAblationAlpha sub-benchmarks (§IV-B startup-cost sensitivity).
var AlphaSeconds = []float64{2e-6, 12e-6, 50e-6}

// RateName formats an interference rate as a stable sub-benchmark name,
// e.g. "rate=0.35".
func RateName(rate float64) string {
	return "rate=" + strconv.FormatFloat(rate, 'g', -1, 64)
}

// AlphaName formats a per-hop latency as a stable sub-benchmark name in
// microseconds, e.g. "alpha_us=12".
func AlphaName(alpha float64) string {
	return "alpha_us=" + strconv.FormatFloat(alpha*1e6, 'g', -1, 64)
}

// RandGrad returns n i.i.d. standard-normal values from a fixed seed — the
// shared synthetic-gradient generator for every benchmark harness.
func RandGrad(n int) []float64 { return RandGradSeeded(n, 7) }

// RandGradSeeded is RandGrad with an explicit seed: multi-peer decode cases
// need per-rank gradients, or the sign majority vote degenerates to the
// all-agree fast path and the bench never measures the general vote tally.
func RandGradSeeded(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	g := make([]float64, n)
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	return g
}

func benchMatMul256(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.New(256, 256)
	y := tensor.New(256, 256)
	x.Randomize(rng, 1)
	y.Randomize(rng, 1)
	out := tensor.New(256, 256)
	b.SetBytes(256 * 256 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(out, x, y)
	}
}

func benchMatMulTA256x64(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.New(256, 256)
	y := tensor.New(256, 64)
	x.Randomize(rng, 1)
	y.Randomize(rng, 1)
	out := tensor.New(256, 64)
	b.SetBytes(256 * 256 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulTA(out, x, y)
	}
}

func benchMatMulTB256(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.New(256, 256)
	y := tensor.New(256, 256)
	x.Randomize(rng, 1)
	y.Randomize(rng, 1)
	out := tensor.New(256, 256)
	b.SetBytes(256 * 256 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulTB(out, x, y)
	}
}

func benchOrthogonalize512x32(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := tensor.New(512, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m.Randomize(rng, 1)
		b.StartTimer()
		tensor.Orthogonalize(m)
	}
}

func allReduceCase(workers, elems int) func(b *testing.B) {
	return func(b *testing.B) {
		transports, err := comm.NewInprocGroup(workers, 0)
		if err != nil {
			b.Fatal(err)
		}
		comms := make([]*comm.Communicator, workers)
		bufs := make([][]float64, workers)
		for r := range comms {
			comms[r] = comm.NewCommunicator(transports[r])
			bufs[r] = make([]float64, elems)
		}
		// Warm the buffer pools so the timed loop measures the steady state.
		abort := func(r int) { transports[r].Close() }
		if err := runRanks(workers, abort, func(r int) error { return comms[r].AllReduceSum(bufs[r]) }); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(8 * elems))
		b.ResetTimer()
		// One long-lived goroutine per rank; the ring schedule itself keeps
		// the ranks in lockstep, so allocs/op reflects the collective alone
		// rather than per-iteration goroutine spawns.
		var wg sync.WaitGroup
		for r := 0; r < workers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for i := 0; i < b.N; i++ {
					if err := comms[r].AllReduceSum(bufs[r]); err != nil {
						b.Error(err)
						// Closing any endpoint closes the whole group, so
						// peer ranks blocked in Recv fail out instead of
						// deadlocking the benchmark.
						transports[r].Close()
						return
					}
				}
			}(r)
		}
		wg.Wait()
	}
}

// runRanks runs fn once per rank concurrently and returns the first error.
// When a rank fails, its transport group is torn down via abort so peer
// ranks blocked in Recv fail out instead of deadlocking.
func runRanks(workers int, abort func(r int), fn func(r int) error) error {
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for r := 0; r < workers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if errs[r] = fn(r); errs[r] != nil && abort != nil {
				abort(r)
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func benchAllGather4x64KB(b *testing.B) {
	const workers = 4
	transports, err := comm.NewInprocGroup(workers, 0)
	if err != nil {
		b.Fatal(err)
	}
	comms := make([]*comm.Communicator, workers)
	blobs := make([][]byte, workers)
	for r := range comms {
		comms[r] = comm.NewCommunicator(transports[r])
		blobs[r] = make([]byte, 64*1024)
	}
	b.SetBytes(64 * 1024)
	abort := func(r int) { transports[r].Close() }
	// Warm the region pools so the timed loop measures the steady state the
	// trainer sees: decode the gathered region, then Release it so the next
	// step's gather re-leases the same memory.
	gather := func(r int) error {
		g, err := comms[r].AllGather(blobs[r])
		if err != nil {
			return err
		}
		g.Release()
		return nil
	}
	if err := runRanks(workers, abort, gather); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runRanks(workers, abort, gather); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBroadcast4x256k(b *testing.B) {
	const workers = 4
	const elems = 256 * 1024
	transports, err := comm.NewInprocGroup(workers, 0)
	if err != nil {
		b.Fatal(err)
	}
	comms := make([]*comm.Communicator, workers)
	bufs := make([][]float64, workers)
	for r := range comms {
		comms[r] = comm.NewCommunicator(transports[r])
		bufs[r] = make([]float64, elems)
	}
	b.SetBytes(8 * elems)
	abort := func(r int) { transports[r].Close() }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := runRanks(workers, abort, func(r int) error {
			return comms[r].Broadcast(bufs[r], 0)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// gatherEncodeCase measures one gather compressor's encode throughput at n
// elements (steady state: the pooled payload path should report 0
// allocs/op for the deterministic methods).
func gatherEncodeCase(n int, mk func() compress.GatherCompressor) func(b *testing.B) {
	return func(b *testing.B) {
		comp := mk()
		grad := RandGrad(n)
		comp.Encode(0, grad) // warm the pooled payload buffer
		b.SetBytes(int64(n * 8))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			comp.Encode(i, grad)
		}
	}
}

// gatherDecodeCase measures the fused multi-peer decode: `workers` encoded
// payloads at n elements merged into the mean gradient in one pass.
func gatherDecodeCase(n, workers int, mk func(r int) compress.GatherCompressor) func(b *testing.B) {
	return func(b *testing.B) {
		blobs := make([][]byte, workers)
		for r := range blobs {
			// Distinct per-rank gradients: peers must disagree, so the sign
			// vote tally (not just its all-agree shortcut) is what's timed.
			blobs[r] = append([]byte(nil), mk(r).Encode(0, RandGradSeeded(n, int64(7+r)))...)
		}
		dec := mk(workers)
		out := make([]float64, n)
		if err := dec.Decode(0, blobs, out); err != nil { // warm decode scratch
			b.Fatal(err)
		}
		b.SetBytes(int64(n * 8))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := dec.Decode(i, blobs, out); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchSignEncode1M(b *testing.B) {
	const n = 1 << 20
	s := compress.NewSign(n, true)
	grad := RandGrad(n)
	b.SetBytes(n * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Encode(i, grad)
	}
}

func benchSignDecode1M(b *testing.B) {
	const n = 1 << 20
	const workers = 8
	blobs := make([][]byte, workers)
	for r := range blobs {
		s := compress.NewSign(n, false)
		//acpvet:ignore each compressor encodes exactly once, so its payload is never re-leased
		blobs[r] = s.Encode(0, RandGradSeeded(n, int64(7+r)))
	}
	dec := compress.NewSign(n, false)
	out := make([]float64, n)
	b.SetBytes(n * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dec.Decode(i, blobs, out); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTopKExact1M(b *testing.B) {
	const n = 1 << 20
	tk := compress.NewTopK(n, n/1000, compress.SelectExact, true, 1)
	grad := RandGrad(n)
	b.SetBytes(n * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Encode(i, grad)
	}
}

func benchTopKSampled1M(b *testing.B) {
	const n = 1 << 20
	tk := compress.NewTopK(n, n/1000, compress.SelectSampled, true, 2)
	grad := RandGrad(n)
	b.SetBytes(n * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Encode(i, grad)
	}
}

// localCollectives satisfies compress.Collectives for single-worker
// benchmarking (no peers: all-reduce is identity).
type localCollectives struct{}

func (localCollectives) AllReduceSum([]float64) error { return nil }
func (localCollectives) AllGather(b []byte) (compress.Gathered, error) {
	return compress.PayloadList{b}, nil
}
func (localCollectives) Size() int { return 1 }

func benchPowerCompress(b *testing.B) {
	const n, m, r = 512, 512, 4
	ps := compress.NewPowerSGD(n, m, r, true, 1)
	grad := RandGrad(n * m)
	b.SetBytes(n * m * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ps.CompressStep(i, grad, localCollectives{}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchACPCompress(b *testing.B) {
	const n, m, r = 512, 512, 4
	a := compress.NewACP(n, m, r, true, true, 1)
	grad := RandGrad(n * m)
	b.SetBytes(n * m * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload := a.Compress(i, grad)
		a.Finalize(i, payload, 1, grad)
	}
}

func benchMiniVGGStep(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	model := models.MiniVGG(rng, 3, 8, 8, 10)
	loss := &nn.SoftmaxCrossEntropy{}
	x := tensor.New(32, 3*8*8)
	x.Randomize(rng, 1)
	labels := make([]int, 32)
	for i := range labels {
		labels[i] = i % 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.ZeroGrads()
		_, d := loss.Forward(model.Forward(x), labels)
		model.Backward(d, nil)
	}
}

// benchFleetEngine1000 runs a full 1000-node chaos scenario per iteration —
// the fleet generator, the seeded fault sampler, and 300 priced steps with
// enough membership churn to defeat a single memo hit. It is the perf gate
// for the scenario engine: a regression in the engine pool, the bottleneck
// memoization, or the sampler's draw loop shows up here first.
func benchFleetEngine1000(b *testing.B) {
	sc := &sim.Scenario{
		Name:   "bench-fleet-1000",
		Seed:   42,
		Steps:  300,
		Model:  "resnet50",
		Method: "acp",
		Fleet: sim.FleetSpec{
			Nodes: 1000,
			Templates: []sim.NodeTemplate{
				{Name: "fast", Weight: 3, ComputeScale: 0.5, BandwidthGbps: 25},
				{Name: "mid", Weight: 6},
				{Name: "slow", Weight: 1, Network: "1gbe"},
			},
			Zones: map[string]float64{"a": 1, "b": 1, "c": 1, "d": 1},
		},
		Faults: sim.FaultSpec{
			CrashPer1kSteps:     0.05,
			TransientPer1kSteps: 0.1,
			CascadeFactor:       2,
		},
		Recovery: sim.RecoverySpec{MinNodes: 100},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sim.RunScenario(sc)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Steps == 0 {
			b.Fatal("scenario priced no steps")
		}
	}
}

func benchSimulateBERTACP32(b *testing.B) {
	cfg := sim.Config{
		Model:   models.BERTLarge(),
		Method:  sim.MethodACP,
		Mode:    sim.ModeWFBPTF,
		Workers: 32,
		Net:     sim.Net10GbE(),
		GPU:     sim.DefaultGPU(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func interferenceCase(rate float64) func(b *testing.B) {
	return func(b *testing.B) {
		gpu := sim.DefaultGPU()
		gpu.InterferenceRate = rate
		cfg := sim.Config{
			Model: models.BERTLarge(), Method: sim.MethodPower, Mode: sim.ModeWFBPTF,
			Workers: 32, Net: sim.Net10GbE(), GPU: gpu,
		}
		var total float64
		for i := 0; i < b.N; i++ {
			r, err := sim.Simulate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			total = r.TotalSec
		}
		b.ReportMetric(total*1e3, "iter-ms")
	}
}

func alphaCase(alpha float64) func(b *testing.B) {
	return func(b *testing.B) {
		net := sim.Net10GbE()
		net.Alpha = alpha
		cfg := sim.Config{
			Model: models.BERTLarge(), Method: sim.MethodACP, Mode: sim.ModeWFBPTF,
			Workers: 32, Net: net, GPU: sim.DefaultGPU(), NoFusion: true,
		}
		var total float64
		for i := 0; i < b.N; i++ {
			r, err := sim.Simulate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			total = r.TotalSec
		}
		b.ReportMetric(total*1e3, "iter-ms")
	}
}
