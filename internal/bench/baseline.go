package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// Result is one benchmark measurement in a baseline file.
type Result struct {
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
}

// Baseline is the on-disk BENCH_<date>.json schema: environment metadata
// plus one Result per suite case. RecordedAt orders baselines; file names
// are only for humans.
type Baseline struct {
	Schema     int       `json:"schema"`
	RecordedAt time.Time `json:"recorded_at"`
	Label      string    `json:"label,omitempty"`
	// Filter records the -filter regexp a partial recording was made with.
	// Partial baselines are never picked as diff anchors by LatestBaseline:
	// a full run diffing against a subset recording would silently shrink
	// the regression gate to that subset.
	Filter     string            `json:"filter,omitempty"`
	GoVersion  string            `json:"go"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// testingInit makes b.Fatal/b.Error usable under testing.Benchmark in a
// plain binary: without testing.Init the testing package's log path nil-
// dereferences and the whole process panics instead of returning a zero
// result. Init registers flags, so it must run exactly once.
var testingInit sync.Once

// Record runs every suite case whose name matches filter (nil = all)
// through testing.Benchmark (each case runs for the standard ~1s benchtime)
// and returns the populated baseline. progress, when non-nil, receives one
// line per completed case. A case that fails (b.Fatal/b.Error inside the
// benchmark body makes testing.Benchmark return a zero result) is omitted
// from the baseline and reported in the returned error, so a broken
// benchmark can never silently become the regression anchor future runs
// diff against.
func Record(label string, filter *regexp.Regexp, progress func(string)) (*Baseline, error) {
	testingInit.Do(testing.Init)
	bl := &Baseline{
		Schema:     1,
		RecordedAt: time.Now().UTC(),
		Label:      label,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: make(map[string]Result),
	}
	if filter != nil {
		bl.Filter = filter.String()
	}
	var failed []string
	for _, c := range Suite() {
		if filter != nil && !filter.MatchString(c.Name) {
			continue
		}
		r := testing.Benchmark(c.F)
		if r.N <= 0 {
			failed = append(failed, c.Name)
			if progress != nil {
				progress(fmt.Sprintf("%-40s FAILED", c.Name))
			}
			continue
		}
		res := Result{
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if r.Bytes > 0 && r.T > 0 {
			res.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
		}
		bl.Benchmarks[c.Name] = res
		if progress != nil {
			progress(fmt.Sprintf("%-40s %12.0f ns/op %8d B/op %6d allocs/op",
				c.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp))
		}
	}
	if len(failed) > 0 {
		return bl, fmt.Errorf("bench: %d case(s) failed: %s", len(failed), strings.Join(failed, ", "))
	}
	return bl, nil
}

// FileName returns the canonical baseline file name for the given day and
// optional label, e.g. BENCH_2026-07-28_seed.json.
func FileName(t time.Time, label string) string {
	name := "BENCH_" + t.Format("2006-01-02")
	if label != "" {
		name += "_" + label
	}
	return name + ".json"
}

// Save writes the baseline to path as indented JSON.
func (bl *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(bl, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a baseline file.
func Load(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bl Baseline
	if err := json.Unmarshal(data, &bl); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return &bl, nil
}

// LatestBaseline finds the BENCH_*.json file under dir with the newest
// RecordedAt stamp, excluding the given path (so a fresh recording does not
// diff against itself) and excluding partial (filtered) recordings — a full
// run diffing against a subset would silently shrink the regression gate to
// that subset. It returns "" when no other baseline exists.
func LatestBaseline(dir, exclude string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	best := ""
	var bestAt time.Time
	for _, m := range matches {
		if sameFile(m, exclude) {
			continue
		}
		bl, err := Load(m)
		if err != nil {
			continue // skip unreadable/foreign files rather than failing
		}
		if bl.Filter != "" {
			continue // partial recording: never an anchor
		}
		if best == "" || bl.RecordedAt.After(bestAt) {
			best, bestAt = m, bl.RecordedAt
		}
	}
	return best, nil
}

func sameFile(a, b string) bool {
	if b == "" {
		return false
	}
	aa, errA := filepath.Abs(a)
	bb, errB := filepath.Abs(b)
	return errA == nil && errB == nil && aa == bb
}

// DiffLine is one row of a baseline comparison.
type DiffLine struct {
	Name       string
	OldNs      float64
	NewNs      float64
	Delta      float64 // (new-old)/old; +0.25 = 25% slower
	Regression bool    // Delta exceeds the threshold
	OldAllocs  int64
	NewAllocs  int64
}

// Diff compares new against old case-by-case. threshold is the relative
// ns/op slowdown tolerated before a case is flagged as a regression
// (e.g. 0.15 = 15%); a negative threshold disables flagging. Cases present
// in only one baseline are skipped.
func Diff(old, new *Baseline, threshold float64) []DiffLine {
	names := make([]string, 0, len(new.Benchmarks))
	for name := range new.Benchmarks {
		if _, ok := old.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	lines := make([]DiffLine, 0, len(names))
	for _, name := range names {
		o, n := old.Benchmarks[name], new.Benchmarks[name]
		d := DiffLine{
			Name:      name,
			OldNs:     o.NsPerOp,
			NewNs:     n.NsPerOp,
			OldAllocs: o.AllocsPerOp,
			NewAllocs: n.AllocsPerOp,
		}
		if o.NsPerOp > 0 {
			d.Delta = (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		}
		d.Regression = threshold >= 0 && d.Delta > threshold
		lines = append(lines, d)
	}
	return lines
}

// FormatDiff renders diff lines as an aligned text table.
func FormatDiff(lines []DiffLine) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-40s %14s %14s %8s %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs old->new")
	for _, d := range lines {
		flag := ""
		if d.Regression {
			flag = "  REGRESSION"
		}
		fmt.Fprintf(&sb, "%-40s %14.0f %14.0f %+7.1f%% %6d -> %-6d%s\n",
			d.Name, d.OldNs, d.NewNs, d.Delta*100, d.OldAllocs, d.NewAllocs, flag)
	}
	return sb.String()
}
