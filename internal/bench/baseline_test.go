package bench

import (
	"path/filepath"
	"testing"
	"time"
)

// TestLatestBaselineSkipsPartialRecordings: a -filter recording must never
// become the diff anchor for later full runs — it would silently shrink the
// regression gate to the filtered subset.
func TestLatestBaselineSkipsPartialRecordings(t *testing.T) {
	dir := t.TempDir()
	full := &Baseline{
		Schema:     1,
		RecordedAt: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
		Benchmarks: map[string]Result{"MatMul256": {NsPerOp: 1}},
	}
	partial := &Baseline{
		Schema:     1,
		RecordedAt: time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC), // newer
		Filter:     "^Sign",
		Benchmarks: map[string]Result{"SignEncode1M": {NsPerOp: 1}},
	}
	fullPath := filepath.Join(dir, "BENCH_2026-01-01.json")
	if err := full.Save(fullPath); err != nil {
		t.Fatal(err)
	}
	if err := partial.Save(filepath.Join(dir, "BENCH_2026-06-01_sub.json")); err != nil {
		t.Fatal(err)
	}
	got, err := LatestBaseline(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if got != fullPath {
		t.Fatalf("LatestBaseline = %q, want the full recording %q (partial must be skipped)", got, fullPath)
	}

	// With only partial recordings present there is no valid anchor.
	got, err = LatestBaseline(t.TempDir(), "")
	if err != nil || got != "" {
		t.Fatalf("empty dir: got %q, %v", got, err)
	}
}

// TestLatestBaselineExcludesSelf guards the fresh-recording exclusion.
func TestLatestBaselineExcludesSelf(t *testing.T) {
	dir := t.TempDir()
	bl := &Baseline{
		Schema:     1,
		RecordedAt: time.Now().UTC(),
		Benchmarks: map[string]Result{"MatMul256": {NsPerOp: 1}},
	}
	path := filepath.Join(dir, "BENCH_self.json")
	if err := bl.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LatestBaseline(dir, path)
	if err != nil || got != "" {
		t.Fatalf("self-exclusion failed: got %q, %v", got, err)
	}
}
