package sim

import (
	"fmt"
	"math/rand"
	"sort"
)

// This file generates heterogeneous fleets from weighted node templates —
// the scenario engine's answer to "no real cluster can reproduce this
// hardware mix deterministically". A FleetSpec declares a handful of
// templates (GPU class, NIC, memory) with relative weights plus a zone
// distribution; GenerateFleet expands it into a concrete, seeded fleet in
// which node i's template and zone are pure functions of (spec, seed).

// MaxFleetNodes bounds the fleet size a scenario may declare: large enough
// for any plausible study, small enough that a hostile or fuzzed scenario
// file cannot ask the generator for gigabytes of nodes.
const MaxFleetNodes = 65536

// NodeTemplate is one weighted hardware class in a fleet.
type NodeTemplate struct {
	// Name identifies the template in reports; must be unique in the fleet.
	Name string `json:"name"`
	// Weight is the template's relative share of the fleet (any positive
	// scale; weights are normalized over the declared templates).
	Weight float64 `json:"weight"`
	// GPUClass is a free-form description ("rtx2080ti", "a100") carried
	// into reports; it does not change the cost model.
	GPUClass string `json:"gpu_class,omitempty"`
	// ComputeScale multiplies the model's calibrated FF&BP time on nodes of
	// this class: 1.0 is the paper's RTX 2080 Ti, 0.5 a GPU twice as fast,
	// 2.0 one half as fast. 0 means 1.0.
	ComputeScale float64 `json:"compute_scale,omitempty"`
	// MemoryGB is the GPU memory capacity; 0 keeps the default GPU's 11GB.
	MemoryGB float64 `json:"memory_gb,omitempty"`
	// Network names a preset interconnect ("1gbe", "10gbe", "100gbib") for
	// this class's NIC; empty inherits the scenario-level default.
	Network string `json:"network,omitempty"`
	// BandwidthGbps, when positive, overrides the preset's per-link
	// bandwidth (alpha and all-gather efficiency keep the preset's values).
	BandwidthGbps float64 `json:"bandwidth_gbps,omitempty"`
}

// FleetSpec declares a generated fleet.
type FleetSpec struct {
	// Nodes is the total fleet size.
	Nodes int `json:"nodes"`
	// Templates are the weighted hardware classes nodes are drawn from.
	Templates []NodeTemplate `json:"templates"`
	// Zones is the failure-domain distribution (zone name -> relative
	// weight). Empty means a single implicit zone "default".
	Zones map[string]float64 `json:"zones,omitempty"`
}

// Node is one generated fleet member.
type Node struct {
	ID           int
	Template     string
	Zone         string
	ComputeScale float64
	Net          Network
	MemoryBytes  float64
}

// validate checks the spec against defaultNet-independent invariants.
func (fs *FleetSpec) validate() error {
	if fs.Nodes < 1 {
		return fmt.Errorf("sim: fleet must have >= 1 node, got %d", fs.Nodes)
	}
	if fs.Nodes > MaxFleetNodes {
		return fmt.Errorf("sim: fleet of %d nodes exceeds the %d-node cap", fs.Nodes, MaxFleetNodes)
	}
	if len(fs.Templates) == 0 {
		return fmt.Errorf("sim: fleet declares no node templates")
	}
	seen := make(map[string]bool, len(fs.Templates))
	total := 0.0
	for i := range fs.Templates {
		t := &fs.Templates[i]
		if t.Name == "" {
			return fmt.Errorf("sim: fleet template %d has no name", i)
		}
		if seen[t.Name] {
			return fmt.Errorf("sim: duplicate fleet template %q", t.Name)
		}
		seen[t.Name] = true
		if t.Weight <= 0 {
			return fmt.Errorf("sim: fleet template %q must have positive weight, got %v", t.Name, t.Weight)
		}
		if t.ComputeScale < 0 {
			return fmt.Errorf("sim: fleet template %q has negative compute scale", t.Name)
		}
		if t.MemoryGB < 0 || t.BandwidthGbps < 0 {
			return fmt.Errorf("sim: fleet template %q has negative capacity terms", t.Name)
		}
		if t.Network != "" {
			if _, ok := NetByName(t.Network); !ok {
				return fmt.Errorf("sim: fleet template %q names unknown network %q", t.Name, t.Network)
			}
		}
		total += t.Weight
	}
	if total <= 0 {
		return fmt.Errorf("sim: fleet template weights sum to %v", total)
	}
	zTotal := 0.0
	for name, w := range fs.Zones {
		if name == "" {
			return fmt.Errorf("sim: fleet declares an unnamed zone")
		}
		if w <= 0 {
			return fmt.Errorf("sim: zone %q must have positive weight, got %v", name, w)
		}
		zTotal += w
	}
	if len(fs.Zones) > 0 && zTotal <= 0 {
		return fmt.Errorf("sim: zone weights sum to %v", zTotal)
	}
	return nil
}

// zoneNames returns the declared zones in a deterministic (sorted) order;
// map iteration order must never leak into generated fleets.
func (fs *FleetSpec) zoneNames() []string {
	if len(fs.Zones) == 0 {
		return []string{"default"}
	}
	names := make([]string, 0, len(fs.Zones))
	for name := range fs.Zones {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// weightedPick draws an index from cumulative weights cum (strictly
// increasing, cum[len-1] == total).
func weightedPick(rng *rand.Rand, cum []float64) int {
	x := rng.Float64() * cum[len(cum)-1]
	for i, c := range cum {
		if x < c {
			return i
		}
	}
	return len(cum) - 1
}

// GenerateFleet expands the spec into a concrete fleet. The same (spec,
// defaultNet, seed) triple always yields the identical fleet: nodes are
// generated in ID order, template and zone draws come from one seeded
// stream, and zone names are iterated sorted.
func GenerateFleet(fs FleetSpec, defaultNet Network, seed int64) ([]Node, error) {
	if err := fs.validate(); err != nil {
		return nil, err
	}
	tmplCum := make([]float64, len(fs.Templates))
	sum := 0.0
	for i := range fs.Templates {
		sum += fs.Templates[i].Weight
		tmplCum[i] = sum
	}
	zones := fs.zoneNames()
	zoneCum := make([]float64, len(zones))
	sum = 0.0
	for i, name := range zones {
		w := 1.0
		if len(fs.Zones) > 0 {
			w = fs.Zones[name]
		}
		sum += w
		zoneCum[i] = sum
	}

	rng := rand.New(rand.NewSource(seed))
	fleet := make([]Node, fs.Nodes)
	for i := range fleet {
		t := &fs.Templates[weightedPick(rng, tmplCum)]
		zone := zones[weightedPick(rng, zoneCum)]

		net := defaultNet
		if t.Network != "" {
			net, _ = NetByName(t.Network)
		}
		if t.BandwidthGbps > 0 {
			net.Bandwidth = t.BandwidthGbps * 1e9 / 8
		}
		scale := t.ComputeScale
		if scale == 0 {
			scale = 1
		}
		mem := DefaultGPU().MemoryBytes
		if t.MemoryGB > 0 {
			mem = t.MemoryGB * 1e9
		}
		fleet[i] = Node{
			ID:           i,
			Template:     t.Name,
			Zone:         zone,
			ComputeScale: scale,
			Net:          net,
			MemoryBytes:  mem,
		}
	}
	return fleet, nil
}
