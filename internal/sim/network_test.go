package sim

import (
	"math"
	"testing"
)

func TestAllReduceTimeFormula(t *testing.T) {
	n := Network{Alpha: 10e-6, Bandwidth: 1e9}
	// p=4, 1MB: 6 hops * 10us + 2*(3/4)*1e6/1e9 = 60us + 1.5ms.
	got := n.AllReduceTime(4, 1e6)
	want := 6*10e-6 + 1.5e-3
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v want %v", got, want)
	}
	if n.AllReduceTime(1, 1e6) != 0 {
		t.Fatal("single worker all-reduce must be free")
	}
}

func TestAllGatherTimeFormula(t *testing.T) {
	n := Network{Alpha: 10e-6, Bandwidth: 1e9, AllGatherEff: 0.5}
	// p=4, 1MB/worker: 3 hops * 10us + 3*1e6/(1e9*0.5).
	got := n.AllGatherTime(4, 1e6)
	want := 3*10e-6 + 3*1e6/0.5e9
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v want %v", got, want)
	}
	if n.AllGatherTime(1, 1e6) != 0 {
		t.Fatal("single worker all-gather must be free")
	}
}

func TestAllGatherEffDefaultsToOne(t *testing.T) {
	n := Network{Alpha: 0, Bandwidth: 1e9}
	got := n.AllGatherTime(2, 1e6)
	if math.Abs(got-1e-3) > 1e-12 {
		t.Fatalf("got %v want 1ms", got)
	}
}

func TestMicroFusionBenchmark(t *testing.T) {
	// §II-A: on the 32-worker 10GbE testbed, all-reducing one 64KB tensor
	// takes about 1.2ms while two 32KB tensors take about 2.0ms — fusing
	// wins. Our calibrated network must reproduce fused < separate with the
	// same ~2x relationship.
	n := Net10GbE()
	one := n.AllReduceTime(32, 64*1024)
	two := 2 * n.AllReduceTime(32, 32*1024)
	if one >= two {
		t.Fatalf("fused (%.2fms) must beat separate (%.2fms)", one*1e3, two*1e3)
	}
	if one < 0.5e-3 || one > 2.5e-3 {
		t.Fatalf("64KB all-reduce %.2fms outside the paper's ballpark (~1.2ms)", one*1e3)
	}
	if ratio := two / one; ratio < 1.5 || ratio > 2.5 {
		t.Fatalf("separate/fused ratio %.2f, paper ~1.7", ratio)
	}
}

func TestBandwidthOrdering(t *testing.T) {
	bytes := 100e6
	t1 := Net1GbE().AllReduceTime(32, bytes)
	t10 := Net10GbE().AllReduceTime(32, bytes)
	t100 := Net100GbIB().AllReduceTime(32, bytes)
	if !(t1 > t10 && t10 > t100) {
		t.Fatalf("bandwidth ordering violated: %v %v %v", t1, t10, t100)
	}
}

func TestNetByName(t *testing.T) {
	for _, name := range []string{"1gbe", "10gbe", "100gbib"} {
		if _, ok := NetByName(name); !ok {
			t.Fatalf("NetByName(%q) failed", name)
		}
	}
	if _, ok := NetByName("carrier-pigeon"); ok {
		t.Fatal("unexpected network")
	}
}

func TestBatchScale(t *testing.T) {
	g := GPU{BatchFixedFrac: 0.3}
	if got := g.batchScale(32, 32); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ref batch scale %v", got)
	}
	if got := g.batchScale(16, 32); math.Abs(got-0.65) > 1e-12 {
		t.Fatalf("half batch scale %v", got)
	}
	if got := g.batchScale(64, 32); math.Abs(got-1.7) > 1e-12 {
		t.Fatalf("double batch scale %v", got)
	}
	if g.batchScale(0, 32) != 1 || g.batchScale(32, 0) != 1 {
		t.Fatal("degenerate batch scales must be 1")
	}
}
