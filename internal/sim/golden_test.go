package sim

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The golden-scenario regression suite: every committed scenario under
// scenarios/ runs with its pinned seed and must reproduce its committed
// report under testdata/golden/ byte for byte. Any change to the cost
// model, the fleet generator, the fault sampler or the report encoding
// shows up here as a diff — regenerate deliberately with:
//
//	go test ./internal/sim -run TestGoldenScenarios -update

var updateGolden = flag.Bool("update", false, "rewrite golden scenario reports")

func TestGoldenScenarios(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no committed scenarios found")
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".json")
		t.Run(name, func(t *testing.T) {
			sc, err := LoadScenario(file)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := RunScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rep.Encode()
			if err != nil {
				t.Fatal(err)
			}

			// Bit-reproducibility is the contract the goldens rest on:
			// a second run must produce the same bytes before we compare
			// against anything committed.
			rep2, err := RunScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			again, err := rep2.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, again) {
				t.Fatalf("scenario %s is not run-to-run deterministic", name)
			}

			golden := filepath.Join("testdata", "golden", name+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden report (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("report for %s drifted from its golden file.\nIf the cost model changed intentionally, regenerate with -update.\ngot:\n%s\nwant:\n%s",
					name, got, want)
			}
		})
	}
}
