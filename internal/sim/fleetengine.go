package sim

import (
	"fmt"
	"sort"

	"acpsgd/internal/models"
)

// This file is the fleet-scale scenario engine: it expands a Scenario into
// a seeded fleet, walks the declared number of training steps injecting
// failures from the fault sampler, prices each step with the existing
// discrete-event iteration model and each recovery with the elastic
// recovery estimator, and accumulates the machine-readable FleetReport.
//
// Scale comes from two observations. First, Simulate's cost is independent
// of the worker count (workers only enter closed-form collective times), so
// a 1000-node step costs the same to price as a 4-node one. Second, the
// ring's step time depends on the fleet only through its bottleneck
// signature (slowest link, largest hop latency, slowest GPU, head count) —
// which changes only when membership changes — so step results are memoized
// per signature and a chaos-free stretch of thousands of steps prices one
// Simulate call. The engine pool underneath (engine.go) recycles the task
// slab across those calls.

// bottleneck is the fleet's current ring-limiting signature: the slowest
// surviving link, the largest hop latency, the least efficient all-gather,
// the slowest GPU and the smallest memory. It doubles as the memo key for
// priced iterations.
type bottleneck struct {
	workers      int
	bandwidth    float64
	alpha        float64
	gatherEff    float64
	computeScale float64
	memoryBytes  float64
}

// fleetRun is the mutable state of one scenario execution.
type fleetRun struct {
	sc     *Scenario
	model  *models.ModelSpec
	method Method
	mode   Mode

	fleet      []Node
	alive      []bool
	aliveCount int

	// aliveZones caches the sorted zones that still have survivors, and
	// zoneAlive the per-zone survivor counts backing it.
	zoneAlive  map[string]int
	aliveZones []string

	stepCache map[bottleneck]Result
	recCache  map[recoveryKey]RecoveryResult
}

// recoveryKey memoizes transition pricing on the post-event signature plus
// the pre-event head count (detection and re-form are priced at the old
// size, replay and restore at the new) and the transition kind — a hang and
// a caught corruption each have a different detection window than a crash,
// and a reshape has none.
type recoveryKey struct {
	after  bottleneck
	before int
	kind   int // transCrash, transHang, transCorrupt or transReshape
}

const (
	transCrash = iota
	transHang
	transCorrupt
	transReshape
)

// RunScenario executes the scenario with its embedded seed.
func RunScenario(sc *Scenario) (*FleetReport, error) {
	return RunScenarioSeed(sc, sc.Seed)
}

// RunScenarioSeed executes the scenario under an explicit seed (the CLI's
// -seed override). The same (scenario, seed) pair always produces a
// byte-identical report.
func RunScenarioSeed(sc *Scenario, seed int64) (*FleetReport, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	model, err := models.ByName(sc.Model)
	if err != nil {
		return nil, err
	}
	method, mode, _ := ByName(sc.Method)
	if sc.Mode != "" {
		mode, _ = parseMode(sc.Mode)
	}

	// Sub-seeds keep the fleet layout and the failure history on
	// independent streams: changing a fault rate cannot reshuffle the
	// generated hardware.
	fleet, err := GenerateFleet(sc.Fleet, sc.defaultNet(), seed)
	if err != nil {
		return nil, err
	}
	sampler := newFaultSampler(&sc.Faults, seed^0x66a66e5c71f3d1a7)

	r := &fleetRun{
		sc:         sc,
		model:      model,
		method:     method,
		mode:       mode,
		fleet:      fleet,
		alive:      make([]bool, len(fleet)),
		aliveCount: len(fleet),
		zoneAlive:  make(map[string]int),
		stepCache:  make(map[bottleneck]Result),
		recCache:   make(map[recoveryKey]RecoveryResult),
	}
	for i := range r.alive {
		r.alive[i] = true
	}
	for _, n := range fleet {
		r.zoneAlive[n.Zone]++
	}
	r.refreshAliveZones()

	rep := &FleetReport{
		Schema:    1,
		Scenario:  sc.Name,
		Seed:      seed,
		Nodes:     len(fleet),
		Templates: make(map[string]int),
		Zones:     make(map[string]int),
	}
	for _, n := range fleet {
		rep.Templates[n.Template]++
		rep.Zones[n.Zone]++
	}

	minNodes := sc.Recovery.minNodes()
	rc := sc.Recovery.config()
	stepSecs := make([]float64, 0, sc.Steps)

	for step := 1; step <= sc.Steps; step++ {
		events := sampler.sample(step, r.fleet, r.alive, r.aliveZones)
		if len(events) > 0 {
			before := r.bottleneck()
			failures, reshapes := 0, 0
			sawCrash, sawHang, sawCorrupt := false, false, false
			for _, ev := range events {
				switch ev.Kind {
				case FaultCrash:
					if r.kill(ev.Node) {
						rep.Crashes++
					}
					failures++
					sawCrash = true
				case FaultTransient:
					rep.Transients++
					failures++
					sawCrash = true
				case FaultZoneOutage:
					if killed := r.killZone(ev.Zone); killed > 0 {
						rep.ZoneOutages++
						rep.Crashes += killed
					}
					failures++
					sawCrash = true
				case FaultHang:
					// A hung rank keeps heartbeating but is expelled by the
					// watchdog, so it leaves the fleet like a crash — only
					// the detection pricing differs.
					if r.kill(ev.Node) {
						rep.Hangs++
					}
					failures++
					sawHang = true
				case FaultCorrupt:
					// A corrupting rank is caught in-collective by the
					// integrity checks and expelled like a crash, but with
					// only the membership barrier as its detection window.
					if r.kill(ev.Node) {
						rep.Corruptions++
					}
					failures++
					sawCorrupt = true
				case EventJoin:
					if r.revive(ev.Node) {
						rep.Joins++
						reshapes++
					}
				case EventDrain:
					if r.kill(ev.Node) {
						rep.Drains++
						reshapes++
					}
				}
			}
			if r.aliveCount < minNodes {
				rep.Dead = true
				// The re-form attempt that found too few survivors.
				if failures > 0 {
					rep.Recoveries++
				} else {
					rep.Reshapes++
				}
				break
			}
			switch {
			case failures > 0:
				// One recovery covers everything the step lost, matching the
				// runtime: a failed Step stabilizes membership once and
				// re-forms once, however many ranks went missing — and any
				// join or drain pending the same step folds into that
				// re-form for free. The detection window is the slowest one
				// any failure this step needs: a crash-class fault must wait
				// out heartbeat expiry regardless of what else happened, a
				// hang the watchdog deadline, and a caught corruption only
				// the membership barrier.
				kind := transCorrupt
				switch {
				case sawCrash || !sawHang && !sawCorrupt:
					kind = transCrash
				case sawHang:
					kind = transHang
				}
				rec, err := r.priceRecovery(before, rc, kind)
				if err != nil {
					return nil, fmt.Errorf("sim: scenario %q step %d: %w", sc.Name, step, err)
				}
				rep.Recoveries++
				rep.RecoverySec += rec.TotalSec
			case reshapes > 0:
				// Joins and drains alone are one budget-free boundary
				// reshape, however many landed this step.
				rec, err := r.priceReshape(rc)
				if err != nil {
					return nil, fmt.Errorf("sim: scenario %q step %d: %w", sc.Name, step, err)
				}
				rep.Reshapes++
				rep.ReshapeSec += rec.TotalSec
			}
		}

		res, err := r.priceStep()
		if err != nil {
			return nil, fmt.Errorf("sim: scenario %q step %d: %w", sc.Name, step, err)
		}
		stepSecs = append(stepSecs, res.TotalSec)
		rep.FFBPSec += res.FFBPSec
		rep.EncodeSec += res.EncodeSec
		rep.DecodeSec += res.DecodeSec
		rep.WireSec += res.WireSec
		rep.ExposedCommSec += res.CommSec
		rep.WireBytes += res.PayloadBytes * float64(r.aliveCount)
		rep.TrainSec += res.TotalSec
	}

	rep.Steps = len(stepSecs)
	rep.FinalSurvivors = r.aliveCount
	rep.summarizeSteps(stepSecs)
	rep.TotalSec = rep.TrainSec + rep.RecoverySec + rep.ReshapeSec
	if rep.TotalSec > 0 {
		rep.StepsPerSec = float64(rep.Steps) / rep.TotalSec
	}
	return rep, nil
}

// kill marks a node dead; reports whether it was alive.
func (r *fleetRun) kill(id int) bool {
	if !r.alive[id] {
		return false
	}
	r.alive[id] = false
	r.aliveCount--
	zone := r.fleet[id].Zone
	r.zoneAlive[zone]--
	if r.zoneAlive[zone] == 0 {
		r.refreshAliveZones()
	}
	return true
}

// revive returns a dead node to the fleet (an elastic join); reports whether
// it was actually dead.
func (r *fleetRun) revive(id int) bool {
	if r.alive[id] {
		return false
	}
	r.alive[id] = true
	r.aliveCount++
	zone := r.fleet[id].Zone
	r.zoneAlive[zone]++
	if r.zoneAlive[zone] == 1 {
		r.refreshAliveZones()
	}
	return true
}

// killZone crashes every survivor in the zone, returning how many died.
func (r *fleetRun) killZone(zone string) int {
	killed := 0
	for _, n := range r.fleet {
		if r.alive[n.ID] && n.Zone == zone {
			r.alive[n.ID] = false
			r.aliveCount--
			killed++
		}
	}
	if killed > 0 {
		r.zoneAlive[zone] = 0
		r.refreshAliveZones()
	}
	return killed
}

func (r *fleetRun) refreshAliveZones() {
	r.aliveZones = r.aliveZones[:0]
	for zone, n := range r.zoneAlive {
		if n > 0 {
			r.aliveZones = append(r.aliveZones, zone)
		}
	}
	sort.Strings(r.aliveZones)
}

// bottleneck computes the surviving fleet's ring-limiting signature.
func (r *fleetRun) bottleneck() bottleneck {
	b := bottleneck{workers: r.aliveCount}
	first := true
	for _, n := range r.fleet {
		if !r.alive[n.ID] {
			continue
		}
		if first {
			b.bandwidth = n.Net.Bandwidth
			b.alpha = n.Net.Alpha
			b.gatherEff = n.Net.AllGatherEff
			b.computeScale = n.ComputeScale
			b.memoryBytes = n.MemoryBytes
			first = false
			continue
		}
		if n.Net.Bandwidth < b.bandwidth {
			b.bandwidth = n.Net.Bandwidth
		}
		if n.Net.Alpha > b.alpha {
			b.alpha = n.Net.Alpha
		}
		if n.Net.AllGatherEff < b.gatherEff {
			b.gatherEff = n.Net.AllGatherEff
		}
		if n.ComputeScale > b.computeScale {
			b.computeScale = n.ComputeScale
		}
		if n.MemoryBytes < b.memoryBytes {
			b.memoryBytes = n.MemoryBytes
		}
	}
	return b
}

// config assembles the iteration Config for a bottleneck signature.
func (r *fleetRun) config(b bottleneck) Config {
	// The slowest GPU paces the synchronous ring: scale the calibrated
	// FF&BP time on a copy of the model spec (specs are read-only shared
	// state; Tensors is shared shallowly).
	m := *r.model
	m.RefComputeSec *= b.computeScale
	gpu := DefaultGPU()
	gpu.MemoryBytes = b.memoryBytes
	return Config{
		Model:     &m,
		Method:    r.method,
		Mode:      r.mode,
		Workers:   b.workers,
		Rank:      r.sc.Rank,
		TopKRatio: r.sc.TopKRatio,
		Net: Network{
			Name:         "fleet-bottleneck",
			Alpha:        b.alpha,
			Bandwidth:    b.bandwidth,
			AllGatherEff: b.gatherEff,
		},
		GPU:            gpu,
		BufferBytes:    r.sc.BufferMB * 1024 * 1024,
		PipelineChunks: r.sc.PipelineChunks,
	}
}

// priceStep returns the memoized iteration result for the current fleet.
func (r *fleetRun) priceStep() (Result, error) {
	b := r.bottleneck()
	if res, ok := r.stepCache[b]; ok {
		return res, nil
	}
	res, err := Simulate(r.config(b))
	if err != nil {
		return Result{}, err
	}
	if res.OOM {
		return Result{}, fmt.Errorf("model %s does not fit the %0.1fGB bottleneck GPU (method %v, %d workers)",
			r.sc.Model, b.memoryBytes/1e9, r.method, b.workers)
	}
	r.stepCache[b] = res
	return res, nil
}

// priceRecovery prices one re-form from the pre-failure fleet to the
// current survivors. kind selects the detection window — the heartbeat
// timeout for crash-class failures (transCrash), the stuck-step watchdog
// deadline when every failure this step was a hang (transHang), and just
// the membership barrier when the step only caught corruption (transCorrupt:
// integrity checks fail inside the collective, so there is nothing to wait
// for beyond Stabilize).
func (r *fleetRun) priceRecovery(before bottleneck, rc RecoveryConfig, kind int) (RecoveryResult, error) {
	after := r.bottleneck()
	key := recoveryKey{after: after, before: before.workers, kind: kind}
	if rec, ok := r.recCache[key]; ok {
		return rec, nil
	}
	// Price detection and re-form at the pre-failure size, replay and
	// restore at the survivors': the estimators take the pre-failure
	// config and the survivor count. The survivor bottleneck may differ
	// from the pre-failure one (the crashed node could have been the
	// straggler), so build the config from the post-failure signature but
	// keep the pre-failure head count.
	cfg := r.config(after)
	cfg.Workers = before.workers
	var rec RecoveryResult
	var err error
	switch kind {
	case transHang:
		rec, err = EstimateHangTo(cfg, rc, after.workers)
	case transCorrupt:
		rec, err = EstimateCorruptTo(cfg, rc, after.workers)
	default:
		rec, err = EstimateRecoveryTo(cfg, rc, after.workers)
	}
	if err != nil {
		return RecoveryResult{}, err
	}
	r.recCache[key] = rec
	return rec, nil
}

// priceReshape prices one planned boundary re-form (joins/drains) at the
// current fleet.
func (r *fleetRun) priceReshape(rc RecoveryConfig) (RecoveryResult, error) {
	after := r.bottleneck()
	key := recoveryKey{after: after, before: after.workers, kind: transReshape}
	if rec, ok := r.recCache[key]; ok {
		return rec, nil
	}
	rec, err := EstimateReshapeTo(r.config(after), rc, after.workers)
	if err != nil {
		return RecoveryResult{}, err
	}
	r.recCache[key] = rec
	return rec, nil
}
