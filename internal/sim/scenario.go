package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"acpsgd/internal/models"
)

// This file defines the declarative scenario format behind
// `acpsim -scenario`: one JSON document that names a paper model and
// aggregation method, declares a generated fleet (weighted hardware
// templates + zones), a failure-injection spec, and the elastic-runtime
// recovery knobs. A scenario plus a seed is a complete, bit-reproducible
// experiment: the committed scenarios/ library and the golden-report
// regression tests both build on that property.

// RecoverySpec carries the elastic-runtime knobs a scenario prices
// recoveries with; it mirrors sim.RecoveryConfig/train.ElasticConfig in
// file-friendly units.
type RecoverySpec struct {
	// CheckpointEverySteps is the periodic snapshot interval (default 8).
	CheckpointEverySteps int `json:"checkpoint_every_steps,omitempty"`
	// HeartbeatTimeoutSec is the liveness window (default 0.25s).
	HeartbeatTimeoutSec float64 `json:"heartbeat_timeout_sec,omitempty"`
	// BackoffSec is the re-form backoff (default 0.1s).
	BackoffSec float64 `json:"backoff_sec,omitempty"`
	// RestoreGbps is the per-worker checkpoint-restore rate; 0 skips the
	// restore term.
	RestoreGbps float64 `json:"restore_gbps,omitempty"`
	// StepDeadlineSec is the stuck-step watchdog deadline; it prices the
	// detection window of "hang" faults. 0 models a watchdog-free runtime
	// (hangs detected only through the heartbeat window).
	StepDeadlineSec float64 `json:"step_deadline_sec,omitempty"`
	// MinNodes is the smallest surviving fleet the run may continue with;
	// dropping below it marks the scenario's cluster dead (default 1).
	MinNodes int `json:"min_nodes,omitempty"`
}

func (r *RecoverySpec) validate() error {
	if r.CheckpointEverySteps < 0 || r.MinNodes < 0 {
		return fmt.Errorf("sim: recovery spec has negative step terms")
	}
	if r.HeartbeatTimeoutSec < 0 || r.BackoffSec < 0 || r.RestoreGbps < 0 || r.StepDeadlineSec < 0 {
		return fmt.Errorf("sim: recovery spec has negative time terms")
	}
	return nil
}

// config resolves defaults into the RecoveryConfig the estimator takes.
func (r *RecoverySpec) config() RecoveryConfig {
	rc := RecoveryConfig{
		CheckpointEverySteps: r.CheckpointEverySteps,
		HeartbeatTimeoutSec:  r.HeartbeatTimeoutSec,
		BackoffSec:           r.BackoffSec,
		RestoreBandwidth:     r.RestoreGbps * 1e9 / 8,
		StepDeadlineSec:      r.StepDeadlineSec,
	}
	if rc.CheckpointEverySteps == 0 {
		rc.CheckpointEverySteps = 8
	}
	if rc.HeartbeatTimeoutSec == 0 {
		rc.HeartbeatTimeoutSec = 0.25
	}
	if rc.BackoffSec == 0 {
		rc.BackoffSec = 0.1
	}
	return rc
}

func (r *RecoverySpec) minNodes() int {
	if r.MinNodes < 1 {
		return 1
	}
	return r.MinNodes
}

// Scenario is one declarative fleet-scale run.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed makes the run bit-reproducible; the CLI may override it.
	Seed int64 `json:"seed,omitempty"`
	// Steps is the number of training steps to price.
	Steps int `json:"steps"`
	// Model is a paper model name ("resnet50", "bert-large", ...).
	Model string `json:"model"`
	// Method is a simulatable canonical method name ("ssgd", "sign",
	// "topk", "power", "acp").
	Method string `json:"method"`
	// Mode overrides the execution mode ("naive", "wfbp", "wfbp+tf");
	// empty uses the paper's default for the method.
	Mode string `json:"mode,omitempty"`
	// Rank is the low-rank rank (0 = the model's paper default).
	Rank int `json:"rank,omitempty"`
	// TopKRatio is the top-k density (0 = the paper's 0.1%).
	TopKRatio float64 `json:"topk_ratio,omitempty"`
	// BufferMB overrides the 25MB fusion budget.
	BufferMB int `json:"buffer_mb,omitempty"`
	// PipelineChunks enables intra-buffer chunk pipelining in the model.
	PipelineChunks int `json:"pipeline_chunks,omitempty"`
	// Network is the fleet-wide default interconnect preset (default
	// "10gbe"); templates may override per class.
	Network string `json:"network,omitempty"`

	Fleet    FleetSpec    `json:"fleet"`
	Faults   FaultSpec    `json:"faults,omitempty"`
	Recovery RecoverySpec `json:"recovery,omitempty"`
}

// parseMode resolves a scenario mode string; ok=false on unknown names.
func parseMode(s string) (Mode, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "naive":
		return ModeNaive, true
	case "wfbp":
		return ModeWFBP, true
	case "wfbp+tf", "wfbptf", "tf":
		return ModeWFBPTF, true
	default:
		return 0, false
	}
}

// Validate checks every cross-field invariant: the model and method must
// resolve, the fleet must be generatable, and every scripted fault must
// target a declared node or zone within the step range.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("sim: scenario has no name")
	}
	if sc.Steps < 1 {
		return fmt.Errorf("sim: scenario %q must run >= 1 step, got %d", sc.Name, sc.Steps)
	}
	if sc.Steps > 1<<20 {
		return fmt.Errorf("sim: scenario %q declares %d steps, beyond the %d cap", sc.Name, sc.Steps, 1<<20)
	}
	if _, err := models.ByName(sc.Model); err != nil {
		return fmt.Errorf("sim: scenario %q: %w", sc.Name, err)
	}
	if _, _, ok := ByName(sc.Method); !ok {
		return fmt.Errorf("sim: scenario %q: method %q has no cost model (simulatable: %s)",
			sc.Name, sc.Method, strings.Join(Names(), ", "))
	}
	if sc.Mode != "" {
		if _, ok := parseMode(sc.Mode); !ok {
			return fmt.Errorf("sim: scenario %q: unknown mode %q", sc.Name, sc.Mode)
		}
	}
	if sc.Rank < 0 || sc.TopKRatio < 0 || sc.TopKRatio > 1 || sc.BufferMB < 0 || sc.PipelineChunks < 0 {
		return fmt.Errorf("sim: scenario %q has negative or out-of-range method knobs", sc.Name)
	}
	if sc.Network != "" {
		if _, ok := NetByName(sc.Network); !ok {
			return fmt.Errorf("sim: scenario %q: unknown network %q", sc.Name, sc.Network)
		}
	}
	if err := sc.Fleet.validate(); err != nil {
		return fmt.Errorf("sim: scenario %q: %w", sc.Name, err)
	}
	if err := sc.Faults.validate(&sc.Fleet, sc.Steps); err != nil {
		return fmt.Errorf("sim: scenario %q: %w", sc.Name, err)
	}
	if err := sc.Recovery.validate(); err != nil {
		return fmt.Errorf("sim: scenario %q: %w", sc.Name, err)
	}
	if sc.Recovery.MinNodes > sc.Fleet.Nodes {
		return fmt.Errorf("sim: scenario %q: min_nodes %d exceeds the %d-node fleet", sc.Name, sc.Recovery.MinNodes, sc.Fleet.Nodes)
	}
	return nil
}

// defaultNet resolves the scenario-wide interconnect.
func (sc *Scenario) defaultNet() Network {
	name := sc.Network
	if name == "" {
		name = "10gbe"
	}
	net, _ := NetByName(name)
	return net
}

// ParseScenario decodes and validates one scenario document. Unknown fields
// are rejected: a typoed knob silently reverting to its default would
// invalidate the reproducibility story.
func ParseScenario(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("sim: parse scenario: %w", err)
	}
	// Trailing garbage after the document is an error, not silence.
	if dec.More() {
		return nil, fmt.Errorf("sim: parse scenario: trailing data after document")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// LoadScenario reads and parses a scenario file.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	sc, err := ParseScenario(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return sc, nil
}
