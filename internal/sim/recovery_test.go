package sim

import (
	"testing"

	"acpsgd/internal/models"
)

func recoveryBase() (Config, RecoveryConfig) {
	cfg := Config{
		Model:   models.ResNet50(),
		Method:  MethodACP,
		Mode:    ModeWFBPTF,
		Workers: 32,
		Net:     Net10GbE(),
		GPU:     DefaultGPU(),
	}
	rc := RecoveryConfig{
		CheckpointEverySteps: 8,
		HeartbeatTimeoutSec:  0.25,
		BackoffSec:           0.025,
		RestoreBandwidth:     10e9, // memory-speed snapshot copy
	}
	return cfg, rc
}

func TestEstimateRecoveryBreakdown(t *testing.T) {
	cfg, rc := recoveryBase()
	r, err := EstimateRecovery(cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"detect":  r.DetectSec,
		"reform":  r.ReformSec,
		"restore": r.RestoreSec,
		"replay":  r.ReplaySec,
		"step":    r.StepSecAfter,
	} {
		if v <= 0 {
			t.Fatalf("phase %s should be positive, got %g", name, v)
		}
	}
	sum := r.DetectSec + r.ReformSec + r.RestoreSec + r.ReplaySec
	if diff := r.TotalSec - sum; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("total %g does not match phase sum %g", r.TotalSec, sum)
	}
	// Detection covers at least the heartbeat window plus the stabilize
	// barrier (two windows in total).
	if r.DetectSec < 2*rc.HeartbeatTimeoutSec {
		t.Fatalf("detect %g below two heartbeat windows", r.DetectSec)
	}
}

// TestEstimateRecoveryCheckpointTradeoff: the analytic model must reproduce
// the knob's defining trade-off — a longer checkpoint interval strictly
// increases the expected replay (and total) cost of a failure.
func TestEstimateRecoveryCheckpointTradeoff(t *testing.T) {
	cfg, rc := recoveryBase()
	short, err := EstimateRecovery(cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	rc.CheckpointEverySteps = 64
	long, err := EstimateRecovery(cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	if long.ReplaySec <= short.ReplaySec {
		t.Fatalf("replay cost should grow with the interval: %g vs %g", long.ReplaySec, short.ReplaySec)
	}
	if long.TotalSec <= short.TotalSec {
		t.Fatalf("total cost should grow with the interval: %g vs %g", long.TotalSec, short.TotalSec)
	}
	// Non-replay phases are interval-independent.
	if long.DetectSec != short.DetectSec || long.ReformSec != short.ReformSec || long.RestoreSec != short.RestoreSec {
		t.Fatal("non-replay phases must not depend on the checkpoint interval")
	}
}

// TestEstimateRecoveryReplayUsesShrunkGroup: replay is charged at the
// surviving group's step time, which the estimator also reports.
func TestEstimateRecoveryReplayUsesShrunkGroup(t *testing.T) {
	cfg, rc := recoveryBase()
	r, err := EstimateRecovery(cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	after := cfg
	after.Workers = cfg.Workers - 1
	want, err := Simulate(after)
	if err != nil {
		t.Fatal(err)
	}
	if r.StepSecAfter != want.TotalSec {
		t.Fatalf("step time after shrink %g, want %g", r.StepSecAfter, want.TotalSec)
	}
	wantReplay := 0.5 * float64(rc.CheckpointEverySteps) * want.TotalSec
	if diff := r.ReplaySec - wantReplay; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("replay %g, want %g", r.ReplaySec, wantReplay)
	}
}

func TestEstimateRecoveryValidation(t *testing.T) {
	cfg, rc := recoveryBase()
	cases := []struct {
		name   string
		mutate func(*Config, *RecoveryConfig)
	}{
		{"zero interval", func(_ *Config, rc *RecoveryConfig) { rc.CheckpointEverySteps = 0 }},
		{"negative timeout", func(_ *Config, rc *RecoveryConfig) { rc.HeartbeatTimeoutSec = -1 }},
		{"single worker", func(c *Config, _ *RecoveryConfig) { c.Workers = 1 }},
		{"bad sim config", func(c *Config, _ *RecoveryConfig) { c.Model = nil }},
	}
	for _, tc := range cases {
		c, r := cfg, rc
		tc.mutate(&c, &r)
		if _, err := EstimateRecovery(c, r); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
}

// TestEstimateReshape: a planned membership change has no detection window,
// no backoff and no replay — only the re-form and restore terms — whether it
// grows or shrinks the group.
func TestEstimateReshape(t *testing.T) {
	cfg, rc := recoveryBase()
	for _, to := range []int{cfg.Workers - 1, cfg.Workers + 4} {
		r, err := EstimateReshapeTo(cfg, rc, to)
		if err != nil {
			t.Fatal(err)
		}
		if r.DetectSec != 0 || r.ReplaySec != 0 {
			t.Fatalf("reshape to %d charged detect %g / replay %g, want 0", to, r.DetectSec, r.ReplaySec)
		}
		if r.ReformSec != float64(to)*cfg.Net.Alpha {
			t.Fatalf("reshape to %d re-form %g should be ring setup only (no backoff)", to, r.ReformSec)
		}
		if r.RestoreSec <= 0 {
			t.Fatalf("reshape to %d skipped the restore term", to)
		}
		crash, err := EstimateRecoveryTo(cfg, rc, cfg.Workers-1)
		if err != nil {
			t.Fatal(err)
		}
		if r.TotalSec >= crash.TotalSec {
			t.Fatalf("a planned reshape (%gs) should be cheaper than a crash recovery (%gs)", r.TotalSec, crash.TotalSec)
		}
	}
}

// TestEstimateRecoveryGrow: survivors above the starting size is a grow
// transition and must price exactly like the planned reshape it is.
func TestEstimateRecoveryGrow(t *testing.T) {
	cfg, rc := recoveryBase()
	grow, err := EstimateRecoveryTo(cfg, rc, cfg.Workers+2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EstimateReshapeTo(cfg, rc, cfg.Workers+2)
	if err != nil {
		t.Fatal(err)
	}
	if grow != want {
		t.Fatalf("grow pricing %+v differs from reshape pricing %+v", grow, want)
	}
}

// TestEstimateHang: with a watchdog the detection window is the step
// deadline plus one stabilize window; without one it degrades to the crash
// window. Everything else matches a crash recovery.
func TestEstimateHang(t *testing.T) {
	cfg, rc := recoveryBase()
	rc.StepDeadlineSec = 3
	h, err := EstimateHangTo(cfg, rc, cfg.Workers-1)
	if err != nil {
		t.Fatal(err)
	}
	if want := rc.StepDeadlineSec + rc.HeartbeatTimeoutSec; h.DetectSec != want {
		t.Fatalf("hang detect %g, want step deadline + stabilize = %g", h.DetectSec, want)
	}
	crash, err := EstimateRecoveryTo(cfg, rc, cfg.Workers-1)
	if err != nil {
		t.Fatal(err)
	}
	if h.ReformSec != crash.ReformSec || h.RestoreSec != crash.RestoreSec || h.ReplaySec != crash.ReplaySec {
		t.Fatal("hang recovery should differ from a crash only in the detection window")
	}

	rc.StepDeadlineSec = 0
	h0, err := EstimateHangTo(cfg, rc, cfg.Workers-1)
	if err != nil {
		t.Fatal(err)
	}
	if h0.DetectSec != crash.DetectSec {
		t.Fatalf("watchdog-free hang detect %g should fall back to the crash window %g", h0.DetectSec, crash.DetectSec)
	}

	rc.StepDeadlineSec = -1
	if _, err := EstimateHangTo(cfg, rc, cfg.Workers-1); err == nil {
		t.Fatal("negative step deadline should be rejected")
	}
}

// TestEstimateCorrupt: a caught corruption is detected inside the collective,
// so its detection window is just the stabilize barrier — strictly shorter
// than a crash's heartbeat expiry or a hang's watchdog deadline — while the
// re-form, restore and replay terms match a crash recovery exactly.
func TestEstimateCorrupt(t *testing.T) {
	cfg, rc := recoveryBase()
	rc.StepDeadlineSec = 3
	c, err := EstimateCorruptTo(cfg, rc, cfg.Workers-1)
	if err != nil {
		t.Fatal(err)
	}
	if c.DetectSec != rc.HeartbeatTimeoutSec {
		t.Fatalf("corrupt detect %g, want one stabilize window %g", c.DetectSec, rc.HeartbeatTimeoutSec)
	}
	crash, err := EstimateRecoveryTo(cfg, rc, cfg.Workers-1)
	if err != nil {
		t.Fatal(err)
	}
	hang, err := EstimateHangTo(cfg, rc, cfg.Workers-1)
	if err != nil {
		t.Fatal(err)
	}
	if c.DetectSec >= crash.DetectSec || c.DetectSec >= hang.DetectSec {
		t.Fatalf("corrupt detection (%g) should undercut crash (%g) and hang (%g)", c.DetectSec, crash.DetectSec, hang.DetectSec)
	}
	if c.ReformSec != crash.ReformSec || c.RestoreSec != crash.RestoreSec || c.ReplaySec != crash.ReplaySec {
		t.Fatal("corrupt recovery should differ from a crash only in the detection window")
	}
}
