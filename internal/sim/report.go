package sim

import (
	"encoding/json"
	"sort"
)

// FleetReport is the machine-readable result of one scenario run. Given the
// same scenario and seed it is byte-for-byte reproducible: every field is a
// pure function of the inputs (no timestamps, no host metadata), maps
// marshal with sorted keys, and floats round-trip through Go's shortest
// decimal representation. The golden-scenario regression suite asserts that
// property directly against committed report files.
type FleetReport struct {
	Schema   int    `json:"schema"`
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`

	// Fleet composition at generation time.
	Nodes     int            `json:"nodes"`
	Templates map[string]int `json:"templates"`
	Zones     map[string]int `json:"zones"`

	// Steps is the number of training steps completed; Dead reports that
	// the run ended early because survivors dropped below min_nodes.
	Steps int  `json:"steps"`
	Dead  bool `json:"dead,omitempty"`

	// Step-time distribution over completed steps (seconds).
	StepMeanSec float64 `json:"step_mean_sec"`
	StepP50Sec  float64 `json:"step_p50_sec"`
	StepP99Sec  float64 `json:"step_p99_sec"`
	StepMinSec  float64 `json:"step_min_sec"`
	StepMaxSec  float64 `json:"step_max_sec"`

	// Per-phase totals over all completed steps (seconds). Encode + Decode
	// is the compression overhead; Wire is total network busy time and
	// ExposedComm the part no compute hid.
	FFBPSec        float64 `json:"ffbp_sec"`
	EncodeSec      float64 `json:"encode_sec"`
	DecodeSec      float64 `json:"decode_sec"`
	WireSec        float64 `json:"wire_sec"`
	ExposedCommSec float64 `json:"exposed_comm_sec"`

	// WireBytes is the fleet-wide communicated volume (per-worker payload
	// summed over every surviving worker, every step).
	WireBytes float64 `json:"wire_bytes"`

	// Chaos accounting. Hangs are watchdog-expelled stuck ranks; Corruptions
	// are ranks expelled after an integrity check (frame CRC, decode
	// validation, numeric guard) caught their output; Joins and Drains are
	// planned membership events, priced as budget-free Reshapes rather than
	// Recoveries (the new fields are omitempty so reports from scenarios
	// that never use them keep their historical byte form).
	Crashes        int     `json:"crashes"`
	Transients     int     `json:"transients"`
	ZoneOutages    int     `json:"zone_outages"`
	Hangs          int     `json:"hangs,omitempty"`
	Corruptions    int     `json:"corruptions,omitempty"`
	Joins          int     `json:"joins,omitempty"`
	Drains         int     `json:"drains,omitempty"`
	Recoveries     int     `json:"recoveries"`
	RecoverySec    float64 `json:"recovery_sec"`
	Reshapes       int     `json:"reshapes,omitempty"`
	ReshapeSec     float64 `json:"reshape_sec,omitempty"`
	FinalSurvivors int     `json:"final_survivors"`

	// Wall-clock composition and effective throughput.
	TrainSec    float64 `json:"train_sec"`
	TotalSec    float64 `json:"total_sec"`
	StepsPerSec float64 `json:"steps_per_sec"`
}

// Encode renders the report in its canonical byte form — the exact bytes
// `acpsim -scenario` prints and the golden suite commits.
func (r *FleetReport) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// percentile returns the q-quantile (0 <= q <= 1) of sorted by the
// nearest-rank method — deterministic, no interpolation artifacts.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// summarizeSteps fills the step-time distribution fields from the per-step
// samples.
func (r *FleetReport) summarizeSteps(stepSecs []float64) {
	if len(stepSecs) == 0 {
		return
	}
	sorted := append([]float64(nil), stepSecs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, s := range stepSecs {
		sum += s
	}
	r.StepMeanSec = sum / float64(len(stepSecs))
	r.StepP50Sec = percentile(sorted, 0.50)
	r.StepP99Sec = percentile(sorted, 0.99)
	r.StepMinSec = sorted[0]
	r.StepMaxSec = sorted[len(sorted)-1]
}
