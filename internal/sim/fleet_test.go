package sim

import (
	"math"
	"testing"
)

func testFleetSpec() FleetSpec {
	return FleetSpec{
		Nodes: 1000,
		Templates: []NodeTemplate{
			{Name: "fast", Weight: 3, ComputeScale: 0.5, BandwidthGbps: 25, MemoryGB: 40},
			{Name: "slow", Weight: 1, Network: "1gbe"},
		},
		Zones: map[string]float64{"a": 1, "b": 1},
	}
}

func TestGenerateFleetDeterministic(t *testing.T) {
	spec := testFleetSpec()
	a, err := GenerateFleet(spec, Net10GbE(), 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFleet(spec, Net10GbE(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != spec.Nodes {
		t.Fatalf("got %d nodes, want %d", len(a), spec.Nodes)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, err := GenerateFleet(spec, Net10GbE(), 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Template != c[i].Template || a[i].Zone != c[i].Zone {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 42 and 43 generated the identical fleet")
	}
}

func TestGenerateFleetOnlyDeclaredTemplatesAndZones(t *testing.T) {
	spec := testFleetSpec()
	fleet, err := GenerateFleet(spec, Net10GbE(), 7)
	if err != nil {
		t.Fatal(err)
	}
	tmpls := map[string]bool{"fast": true, "slow": true}
	zones := map[string]bool{"a": true, "b": true}
	for _, n := range fleet {
		if !tmpls[n.Template] {
			t.Fatalf("node %d drew undeclared template %q", n.ID, n.Template)
		}
		if !zones[n.Zone] {
			t.Fatalf("node %d drew undeclared zone %q", n.ID, n.Zone)
		}
		if n.ID < 0 || n.ID >= spec.Nodes {
			t.Fatalf("node ID %d out of range", n.ID)
		}
	}
}

func TestGenerateFleetImplicitDefaultZone(t *testing.T) {
	spec := testFleetSpec()
	spec.Zones = nil
	fleet, err := GenerateFleet(spec, Net10GbE(), 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range fleet {
		if n.Zone != "default" {
			t.Fatalf("node %d in zone %q, want the implicit default", n.ID, n.Zone)
		}
	}
}

func TestGenerateFleetWeightRatios(t *testing.T) {
	// 3:1 weights over 1000 nodes: the fast share must land near 75%.
	fleet, err := GenerateFleet(testFleetSpec(), Net10GbE(), 11)
	if err != nil {
		t.Fatal(err)
	}
	fast := 0
	for _, n := range fleet {
		if n.Template == "fast" {
			fast++
		}
	}
	if share := float64(fast) / float64(len(fleet)); math.Abs(share-0.75) > 0.05 {
		t.Fatalf("fast share %.3f, want ~0.75 for 3:1 weights", share)
	}
}

func TestGenerateFleetTemplateOverrides(t *testing.T) {
	fleet, err := GenerateFleet(testFleetSpec(), Net10GbE(), 3)
	if err != nil {
		t.Fatal(err)
	}
	oneGbE := Net1GbE()
	for _, n := range fleet {
		switch n.Template {
		case "fast":
			// bandwidth_gbps overrides the default preset's link rate; alpha
			// stays the preset's.
			if n.Net.Bandwidth != 25*1e9/8 {
				t.Fatalf("fast node bandwidth %v, want 25Gbps", n.Net.Bandwidth)
			}
			if n.Net.Alpha != Net10GbE().Alpha {
				t.Fatalf("fast node alpha %v should inherit the default preset", n.Net.Alpha)
			}
			if n.ComputeScale != 0.5 || n.MemoryBytes != 40e9 {
				t.Fatalf("fast node lost template overrides: %+v", n)
			}
		case "slow":
			// network names a full preset; unset knobs take defaults.
			if n.Net.Bandwidth != oneGbE.Bandwidth || n.Net.Alpha != oneGbE.Alpha {
				t.Fatalf("slow node should be on the 1gbe preset: %+v", n.Net)
			}
			if n.ComputeScale != 1 || n.MemoryBytes != DefaultGPU().MemoryBytes {
				t.Fatalf("slow node defaults wrong: %+v", n)
			}
		}
	}
}

func TestFleetSpecValidation(t *testing.T) {
	base := testFleetSpec()
	cases := []struct {
		name   string
		mutate func(*FleetSpec)
	}{
		{"zero nodes", func(f *FleetSpec) { f.Nodes = 0 }},
		{"over cap", func(f *FleetSpec) { f.Nodes = MaxFleetNodes + 1 }},
		{"no templates", func(f *FleetSpec) { f.Templates = nil }},
		{"unnamed template", func(f *FleetSpec) { f.Templates[0].Name = "" }},
		{"duplicate template", func(f *FleetSpec) { f.Templates[1].Name = "fast" }},
		{"zero weight", func(f *FleetSpec) { f.Templates[0].Weight = 0 }},
		{"negative weight", func(f *FleetSpec) { f.Templates[0].Weight = -1 }},
		{"negative compute scale", func(f *FleetSpec) { f.Templates[0].ComputeScale = -0.5 }},
		{"negative memory", func(f *FleetSpec) { f.Templates[0].MemoryGB = -1 }},
		{"unknown network", func(f *FleetSpec) { f.Templates[0].Network = "40gbe" }},
		{"unnamed zone", func(f *FleetSpec) { f.Zones = map[string]float64{"": 1} }},
		{"zero zone weight", func(f *FleetSpec) { f.Zones = map[string]float64{"a": 0} }},
	}
	for _, tc := range cases {
		spec := base
		spec.Templates = append([]NodeTemplate(nil), base.Templates...)
		tc.mutate(&spec)
		if _, err := GenerateFleet(spec, Net10GbE(), 1); err == nil {
			t.Fatalf("%s: expected validation error", tc.name)
		}
	}
}
