package sim

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testScenarioJSON is a small, fully valid scenario document used by the
// parser tests and as the fuzz seed corpus.
const testScenarioJSON = `{
  "name": "unit",
  "seed": 9,
  "steps": 10,
  "model": "resnet50",
  "method": "acp",
  "fleet": {
    "nodes": 4,
    "templates": [{"name": "gpu", "weight": 1}],
    "zones": {"a": 1, "b": 1}
  },
  "faults": {
    "scripted": [{"step": 3, "kind": "crash", "node": 2}]
  },
  "recovery": {"min_nodes": 2}
}`

func TestParseScenario(t *testing.T) {
	sc, err := ParseScenario([]byte(testScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "unit" || sc.Steps != 10 || sc.Fleet.Nodes != 4 {
		t.Fatalf("parsed scenario wrong: %+v", sc)
	}
	if len(sc.Faults.Scripted) != 1 || sc.Faults.Scripted[0].Kind != FaultCrash {
		t.Fatalf("scripted faults wrong: %+v", sc.Faults.Scripted)
	}
}

func TestParseScenarioRejectsUnknownFields(t *testing.T) {
	doc := strings.Replace(testScenarioJSON, `"seed": 9,`, `"seed": 9, "stepz": 10,`, 1)
	if _, err := ParseScenario([]byte(doc)); err == nil {
		t.Fatal("a typoed field must be an error, not a silent default")
	}
}

func TestParseScenarioRejectsTrailingData(t *testing.T) {
	if _, err := ParseScenario([]byte(testScenarioJSON + `{"name": "second"}`)); err == nil {
		t.Fatal("trailing document must be rejected")
	}
}

func TestParseScenarioRejectsGarbage(t *testing.T) {
	for _, doc := range []string{"", "nope", "[]", `{"name":`} {
		if _, err := ParseScenario([]byte(doc)); err == nil {
			t.Fatalf("garbage %q accepted", doc)
		}
	}
}

func TestScenarioValidation(t *testing.T) {
	mutate := func(f func(*Scenario)) *Scenario {
		var sc Scenario
		if err := json.Unmarshal([]byte(testScenarioJSON), &sc); err != nil {
			t.Fatal(err)
		}
		f(&sc)
		return &sc
	}
	cases := []struct {
		name string
		sc   *Scenario
	}{
		{"no name", mutate(func(s *Scenario) { s.Name = "" })},
		{"zero steps", mutate(func(s *Scenario) { s.Steps = 0 })},
		{"steps over cap", mutate(func(s *Scenario) { s.Steps = 1<<20 + 1 })},
		{"unknown model", mutate(func(s *Scenario) { s.Model = "gpt5" })},
		{"unsimulatable method", mutate(func(s *Scenario) { s.Method = "dgc" })},
		{"unknown mode", mutate(func(s *Scenario) { s.Mode = "eager" })},
		{"negative rank", mutate(func(s *Scenario) { s.Rank = -1 })},
		{"topk ratio over 1", mutate(func(s *Scenario) { s.TopKRatio = 1.5 })},
		{"unknown network", mutate(func(s *Scenario) { s.Network = "myrinet" })},
		{"scripted step out of range", mutate(func(s *Scenario) { s.Faults.Scripted[0].Step = 11 })},
		{"scripted node out of range", mutate(func(s *Scenario) { s.Faults.Scripted[0].Node = 4 })},
		{"scripted unknown kind", mutate(func(s *Scenario) { s.Faults.Scripted[0].Kind = "brownout" })},
		{"scripted undeclared zone", mutate(func(s *Scenario) {
			s.Faults.Scripted[0] = ScriptedFault{Step: 1, Kind: FaultZoneOutage, Zone: "z"}
		})},
		{"negative fault rate", mutate(func(s *Scenario) { s.Faults.CrashPer1kSteps = -1 })},
		{"cascade factor below 1", mutate(func(s *Scenario) { s.Faults.CascadeFactor = 0.5 })},
		{"negative recovery knob", mutate(func(s *Scenario) { s.Recovery.BackoffSec = -1 })},
		{"min nodes over fleet", mutate(func(s *Scenario) { s.Recovery.MinNodes = 5 })},
	}
	for _, tc := range cases {
		if err := tc.sc.Validate(); err == nil {
			t.Fatalf("%s: expected a validation error", tc.name)
		}
	}
}

func TestParseModeNames(t *testing.T) {
	for s, want := range map[string]Mode{
		"naive": ModeNaive, "wfbp": ModeWFBP, "wfbp+tf": ModeWFBPTF, "WFBPTF": ModeWFBPTF, "tf": ModeWFBPTF,
	} {
		got, ok := parseMode(s)
		if !ok || got != want {
			t.Fatalf("parseMode(%q) = %v, %v", s, got, ok)
		}
	}
	if _, ok := parseMode("eager"); ok {
		t.Fatal("unknown mode accepted")
	}
}

// TestCommittedScenariosParse keeps the shipped scenario library loadable:
// every file under scenarios/ must parse, validate, and carry a seed so its
// golden report is reproducible by name alone.
func TestCommittedScenariosParse(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("expected the committed scenario library, found %d files", len(files))
	}
	for _, f := range files {
		sc, err := LoadScenario(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if sc.Seed == 0 {
			t.Fatalf("%s: committed scenarios must pin a seed", f)
		}
		if want := strings.TrimSuffix(filepath.Base(f), ".json"); sc.Name != want {
			t.Fatalf("%s: scenario name %q should match its filename", f, sc.Name)
		}
	}
}

func TestLoadScenarioMissingFile(t *testing.T) {
	if _, err := LoadScenario(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

// FuzzParseScenario drives the strict parser with arbitrary documents: it
// must never panic, and anything it accepts must be internally consistent
// enough to validate and re-validate idempotently.
func FuzzParseScenario(f *testing.F) {
	f.Add([]byte(testScenarioJSON))
	if data, err := os.ReadFile(filepath.Join("..", "..", "scenarios", "1000-node-chaos.json")); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`{"name":"x","steps":1,"model":"resnet50","method":"ssgd","fleet":{"nodes":1,"templates":[{"name":"t","weight":1}]}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := ParseScenario(data)
		if err != nil {
			return
		}
		// Accepted documents satisfy every invariant Validate checks, and
		// stay valid when checked again.
		if err := sc.Validate(); err != nil {
			t.Fatalf("accepted scenario fails re-validation: %v", err)
		}
		// The fleet generator must succeed on any validated spec.
		if _, err := GenerateFleet(sc.Fleet, sc.defaultNet(), 1); err != nil {
			t.Fatalf("validated fleet fails to generate: %v", err)
		}
	})
}
