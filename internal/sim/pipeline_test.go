package sim

import (
	"testing"

	"acpsgd/internal/models"
)

// TestPipelineChunksTerm: the per-chunk task-graph term must reproduce the
// paper's pipelining trade-off (§III-B) — chunking pays one alpha/launch set
// per chunk but lets a gather method's decode overlap later chunks' wire
// time — and must stay a pure graph refinement: chunks<=1 is exactly the
// unpipelined graph, payload volume never changes.
func TestPipelineChunksTerm(t *testing.T) {
	base := func(method Method) Config {
		return Config{
			Model:   models.BERTBase(),
			Method:  method,
			Mode:    ModeWFBPTF,
			Workers: 32,
			Net:     Net10GbE(),
			GPU:     DefaultGPU(),
		}
	}

	// chunks=1 must be graph-identical to chunks=0.
	for _, method := range []Method{MethodSSGD, MethodSign, MethodTopK, MethodACP} {
		cfg := base(method)
		plain, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.PipelineChunks = 1
		one, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if one.TotalSec != plain.TotalSec || one.PayloadBytes != plain.PayloadBytes {
			t.Fatalf("%v: chunks=1 differs from chunks=0: %.9f vs %.9f", method, one.TotalSec, plain.TotalSec)
		}
	}

	// Payload volume is invariant under chunking; only timing terms move.
	for _, method := range []Method{MethodSSGD, MethodSign, MethodACP} {
		cfg := base(method)
		plain, _ := Simulate(cfg)
		cfg.PipelineChunks = 8
		chunked, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if diff := chunked.PayloadBytes - plain.PayloadBytes; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("%v: chunking changed payload volume: %.1f vs %.1f", method, chunked.PayloadBytes, plain.PayloadBytes)
		}
	}

	// S-SGD has no encode/decode to hide: chunking only adds alpha terms, so
	// it must never be faster and must be strictly slower once alpha is
	// large.
	ssgd := base(MethodSSGD)
	plain, _ := Simulate(ssgd)
	ssgd.PipelineChunks = 8
	chunked, _ := Simulate(ssgd)
	if chunked.TotalSec < plain.TotalSec-1e-9 {
		t.Fatalf("S-SGD chunking should not help: %.6f vs %.6f", chunked.TotalSec, plain.TotalSec)
	}
	slowNet := base(MethodSSGD)
	slowNet.Net.Alpha = 1e-3
	slowPlain, _ := Simulate(slowNet)
	slowNet.PipelineChunks = 8
	slowChunked, _ := Simulate(slowNet)
	if slowChunked.TotalSec <= slowPlain.TotalSec {
		t.Fatalf("high-alpha S-SGD chunking should be strictly slower: %.6f vs %.6f",
			slowChunked.TotalSec, slowPlain.TotalSec)
	}

	// Sign-SGD's decode is what sits on the critical path after the last
	// gather (Han et al.'s end-to-end finding): with a low-alpha net, the
	// chunked graph overlaps decode with wire and must be strictly faster;
	// the exposed (non-overlapped) communication must not grow.
	sign := base(MethodSign)
	sign.Net.Alpha = 1e-7
	signPlain, err := Simulate(sign)
	if err != nil {
		t.Fatal(err)
	}
	sign.PipelineChunks = 8
	signChunked, err := Simulate(sign)
	if err != nil {
		t.Fatal(err)
	}
	if signChunked.TotalSec >= signPlain.TotalSec {
		t.Fatalf("Sign-SGD chunking should hide decode behind wire: %.6f vs %.6f",
			signChunked.TotalSec, signPlain.TotalSec)
	}
	if signChunked.CommSec > signPlain.CommSec+1e-9 {
		t.Fatalf("Sign-SGD chunking exposed more comm: %.6f vs %.6f", signChunked.CommSec, signPlain.CommSec)
	}

	// The knob validates.
	bad := base(MethodSSGD)
	bad.PipelineChunks = -1
	if _, err := Simulate(bad); err == nil {
		t.Fatal("negative PipelineChunks should be rejected")
	}
}
