package sim

import (
	"testing"

	"acpsgd/internal/models"
)

// TestNoOverlapExposesCommunication: deferring launches until after backward
// (the trainer's Overlap=off schedule) must never make a simulated iteration
// faster, and for communication-bound configurations it must be strictly
// slower with strictly more non-overlapped communication — the term the
// measured OverlapStep bench sees on the latency-injected transport.
func TestNoOverlapExposesCommunication(t *testing.T) {
	// Power-SGD is deliberately absent: its pipeline runs compression on the
	// side compute stream, which contends with backward at the interference
	// rate (§III-C) — so deferring it can legitimately be FASTER in the
	// model, exactly the paper's argument against comm-hook Power-SGD under
	// WFBP. The monotonicity assertion holds for the methods whose
	// compression is inline on the main stream.
	for _, method := range []Method{MethodSSGD, MethodSign, MethodTopK, MethodACP} {
		t.Run(method.String(), func(t *testing.T) {
			base := Config{
				Model:   models.BERTBase(),
				Method:  method,
				Mode:    ModeWFBPTF,
				Workers: 32,
				Net:     Net10GbE(),
				GPU:     DefaultGPU(),
			}
			overlapped, err := Simulate(base)
			if err != nil {
				t.Fatal(err)
			}
			deferred := base
			deferred.NoOverlap = true
			exposed, err := Simulate(deferred)
			if err != nil {
				t.Fatal(err)
			}
			const eps = 1e-9
			if exposed.TotalSec < overlapped.TotalSec-eps {
				t.Fatalf("no-overlap faster than overlap: %.6f vs %.6f", exposed.TotalSec, overlapped.TotalSec)
			}
			if exposed.CommSec < overlapped.CommSec-eps {
				t.Fatalf("no-overlap exposed less communication: %.6f vs %.6f",
					exposed.CommSec, overlapped.CommSec)
			}
		})
	}

	// S-SGD on 10GbE is communication-bound: the gap must be strict.
	base := Config{
		Model: models.BERTBase(), Method: MethodSSGD, Mode: ModeWFBPTF,
		Workers: 32, Net: Net10GbE(), GPU: DefaultGPU(),
	}
	overlapped, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	base.NoOverlap = true
	exposed, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	if exposed.TotalSec <= overlapped.TotalSec {
		t.Fatalf("S-SGD no-overlap should be strictly slower: %.6f vs %.6f",
			exposed.TotalSec, overlapped.TotalSec)
	}
	if exposed.CommSec <= overlapped.CommSec {
		t.Fatalf("S-SGD no-overlap should expose strictly more comm: %.6f vs %.6f",
			exposed.CommSec, overlapped.CommSec)
	}
	// With nothing overlapped, exposed communication plus compute accounts
	// for the whole iteration.
	sum := exposed.FFBPSec + exposed.CompressSec + exposed.CommSec
	if diff := exposed.TotalSec - sum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("no-overlap breakdown should sum to total: %.9f vs %.9f", sum, exposed.TotalSec)
	}

	// Power-SGD under WFBP+TF pays stream interference; the deferred
	// schedule must still simulate and expose at least as much comm.
	p := Config{
		Model: models.BERTBase(), Method: MethodPower, Mode: ModeWFBPTF,
		Workers: 32, Net: Net10GbE(), GPU: DefaultGPU(),
	}
	pOn, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	p.NoOverlap = true
	pOff, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if pOff.CommSec < pOn.CommSec-1e-9 {
		t.Fatalf("Power-SGD no-overlap exposed less comm: %.6f vs %.6f", pOff.CommSec, pOn.CommSec)
	}
}
