package sim

import "fmt"

// This file models the cost of one elastic-runtime recovery (the
// train.Cluster failure path: detect → re-form → restore → replay), so the
// checkpoint interval and heartbeat knobs can be tuned analytically: a short
// CheckpointEvery pays snapshot overhead every interval, a long one pays
// replayed steps at every failure. The estimator composes the same
// alpha-beta Network and iteration model as Simulate.

// RecoveryConfig describes the elastic runtime knobs the estimate covers,
// mirroring train.ElasticConfig in seconds/steps.
type RecoveryConfig struct {
	// CheckpointEverySteps is the periodic snapshot interval
	// (train.ElasticConfig.CheckpointEvery).
	CheckpointEverySteps int
	// HeartbeatTimeoutSec is the liveness window: a crash is detected, at
	// worst, one full window plus a monitor tick after the last heartbeat,
	// and the membership barrier (Stabilize) waits out one more window.
	HeartbeatTimeoutSec float64
	// BackoffSec is the re-form backoff paid before membership settles.
	BackoffSec float64
	// RestoreBandwidth is the per-worker byte rate at which checkpointed
	// state is restored (copy from the in-memory snapshot, or disk read for
	// a process restart). 0 skips the restore term.
	RestoreBandwidth float64
	// StepDeadlineSec is the stuck-step watchdog deadline
	// (train.ElasticConfig.StepDeadline). A hang is detected after one full
	// deadline rather than a heartbeat window — the hung rank keeps
	// heartbeating, so the watchdog is the only detector. 0 models a
	// watchdog-free runtime, where a hang is only caught once the group
	// abort makes the rank miss heartbeats (the crash detection window).
	StepDeadlineSec float64
}

func (rc *RecoveryConfig) validate() error {
	if rc.CheckpointEverySteps < 1 {
		return fmt.Errorf("sim: recovery checkpoint interval must be >= 1, got %d", rc.CheckpointEverySteps)
	}
	if rc.HeartbeatTimeoutSec < 0 || rc.BackoffSec < 0 || rc.RestoreBandwidth < 0 || rc.StepDeadlineSec < 0 {
		return fmt.Errorf("sim: recovery config has negative terms")
	}
	return nil
}

// RecoveryResult breaks one recovery into the phases of the runtime's
// failure path.
type RecoveryResult struct {
	// DetectSec is the failure-detection window: heartbeat timeout plus the
	// membership barrier (Stabilize waits out a second full window so every
	// pre-dead rank is expelled from the settled epoch).
	DetectSec float64
	// ReformSec is backoff plus the transport-group rebuild (one ring of
	// alpha-cost connection setup among the survivors).
	ReformSec float64
	// RestoreSec is the per-worker checkpoint restore (weights + momentum +
	// residual state over RestoreBandwidth).
	RestoreSec float64
	// ReplaySec is the work lost since the last checkpoint: in expectation
	// half the checkpoint interval, re-run at the shrunk group's step time.
	ReplaySec float64
	// TotalSec is the sum of the phases.
	TotalSec float64
	// StepSecAfter is the per-iteration time at the surviving group size,
	// from the same model Simulate uses.
	StepSecAfter float64
}

// EstimateRecovery predicts the wall-clock cost of one recovery for the
// training iteration described by cfg when one worker fails. The surviving
// group has cfg.Workers-1 ranks; cfg must describe at least 2 workers.
func EstimateRecovery(cfg Config, rc RecoveryConfig) (RecoveryResult, error) {
	if cfg.Workers < 2 {
		return RecoveryResult{}, fmt.Errorf("sim: recovery needs >= 2 workers, got %d", cfg.Workers)
	}
	return EstimateRecoveryTo(cfg, rc, cfg.Workers-1)
}

// EstimateRecoveryTo generalizes EstimateRecovery to an arbitrary target
// group size: survivors == cfg.Workers prices a same-size re-form (a
// transient link fault — the epoch rebuilds but nobody is expelled),
// survivors < cfg.Workers prices losing cfg.Workers-survivors ranks at once
// (a multi-node or zone failure), and survivors > cfg.Workers prices a grow
// transition (joiners admitted at a step boundary) — a planned re-form with
// no detection window and no replayed work. The fleet scenario engine calls
// this for every recovery event it injects.
func EstimateRecoveryTo(cfg Config, rc RecoveryConfig, survivors int) (RecoveryResult, error) {
	if survivors > cfg.Workers {
		return EstimateReshapeTo(cfg, rc, survivors)
	}
	// Detection: the monitor expels a silent rank after at most one timeout
	// plus a tick (timeout/4), and Stabilize then waits out one more full
	// window as the membership barrier.
	return estimateTransition(cfg, rc, survivors, rc.HeartbeatTimeoutSec*2.25, true, true)
}

// EstimateReshapeTo prices a planned membership change (join or graceful
// drain) to the given group size. A reshape happens at a step boundary: no
// failure to detect, no backoff, nothing replayed — the cost is the
// transport-group rebuild plus the checkpoint restore at the new size.
func EstimateReshapeTo(cfg Config, rc RecoveryConfig, to int) (RecoveryResult, error) {
	return estimateTransition(cfg, rc, to, 0, false, false)
}

// EstimateHangTo prices recovering from a hung-but-heartbeating rank. The
// heartbeat detector never fires — detection is the stuck-step watchdog
// deadline, plus the membership barrier (one heartbeat window) during which
// the blamed rank is expelled. With no watchdog configured
// (StepDeadlineSec == 0) the estimate falls back to the crash window: the
// group abort eventually makes the wedged rank miss heartbeats.
func EstimateHangTo(cfg Config, rc RecoveryConfig, survivors int) (RecoveryResult, error) {
	detect := rc.StepDeadlineSec + rc.HeartbeatTimeoutSec
	if rc.StepDeadlineSec == 0 {
		detect = rc.HeartbeatTimeoutSec * 2.25
	}
	return estimateTransition(cfg, rc, survivors, detect, true, true)
}

// EstimateCorruptTo prices expelling a rank caught emitting corrupt data
// (frame CRC mismatch, structurally invalid compressed payload, or a
// non-finite gradient). Detection is immediate — the integrity check fails
// inside the collective that carried the damage and the peers blame the
// sender directly — so the only detection-side wait is the membership
// barrier: one heartbeat window of Stabilize before the survivors re-form.
// Backoff, restore and replay are paid exactly as for a crash.
func EstimateCorruptTo(cfg Config, rc RecoveryConfig, survivors int) (RecoveryResult, error) {
	return estimateTransition(cfg, rc, survivors, rc.HeartbeatTimeoutSec, true, true)
}

// estimateTransition is the shared core of the recovery, reshape, hang and
// corrupt estimators: price the step at the target size, then assemble the phase
// breakdown from the detection window, the (optionally backed-off) re-form,
// the restore, and the (optional) replay term.
func estimateTransition(cfg Config, rc RecoveryConfig, to int, detectSec float64, backoff, replay bool) (RecoveryResult, error) {
	if err := rc.validate(); err != nil {
		return RecoveryResult{}, err
	}
	if to < 1 {
		return RecoveryResult{}, fmt.Errorf("sim: target group size must be >= 1, got %d", to)
	}

	after := cfg
	after.Workers = to
	res, err := Simulate(after)
	if err != nil {
		return RecoveryResult{}, err
	}
	if res.OOM {
		return RecoveryResult{}, fmt.Errorf("sim: group of %d does not fit in GPU memory", to)
	}

	r := RecoveryResult{StepSecAfter: res.TotalSec, DetectSec: detectSec}

	// Re-form: the backoff (failure paths only — a planned reshape happens at
	// the boundary with no settle delay), then the transports reconnect —
	// modeled as one alpha per ring hop around the new ring.
	r.ReformSec = float64(to) * cfg.Net.Alpha
	if backoff {
		r.ReformSec += rc.BackoffSec
	}

	// Restore: each worker copies its full training state back in. The
	// state is weights + momentum (2x raw fp64 tensor bytes) plus residual
	// vectors on the same order as one more copy.
	if rc.RestoreBandwidth > 0 {
		stateBytes := 3 * 8 * float64(cfg.Model.NumParams())
		r.RestoreSec = stateBytes / rc.RestoreBandwidth
	}

	// Replay: work since the last checkpoint is lost; in expectation the
	// failure lands mid-interval, so half the interval is re-run at the new
	// group's step time. A planned reshape checkpoints at the boundary and
	// replays nothing.
	if replay {
		r.ReplaySec = 0.5 * float64(rc.CheckpointEverySteps) * res.TotalSec
	}

	r.TotalSec = r.DetectSec + r.ReformSec + r.RestoreSec + r.ReplaySec
	return r, nil
}
