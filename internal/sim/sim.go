package sim

import (
	"fmt"

	"acpsgd/internal/models"
)

// Method identifies the aggregation method being simulated.
type Method int

// Methods of the paper's evaluation.
const (
	MethodSSGD Method = iota + 1
	MethodSign
	MethodTopK
	MethodPower
	MethodACP
)

// String returns the paper's name for the method.
func (m Method) String() string {
	switch m {
	case MethodSSGD:
		return "S-SGD"
	case MethodSign:
		return "Sign-SGD"
	case MethodTopK:
		return "Top-k SGD"
	case MethodPower:
		return "Power-SGD"
	case MethodACP:
		return "ACP-SGD"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Mode selects the system-optimization level (Fig. 9's three variants).
type Mode int

// Execution modes.
const (
	// ModeNaive runs all aggregation after back-propagation, fully packed
	// (for Power-SGD this is the original implementation, which batches
	// compression post-BP; for S-SGD it is one fused post-BP all-reduce).
	ModeNaive Mode = iota + 1
	// ModeWFBP overlaps per-tensor communication with back-propagation but
	// performs no tensor fusion.
	ModeWFBP
	// ModeWFBPTF adds byte-budgeted tensor fusion (the paper's fully
	// optimized configuration; Power-SGD in this mode is "Power-SGD*").
	ModeWFBPTF
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeNaive:
		return "Naive"
	case ModeWFBP:
		return "WFBP"
	case ModeWFBPTF:
		return "WFBP+TF"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// DefaultBufferBytes is the 25MB PyTorch-DDP fusion budget (§IV-B).
const DefaultBufferBytes = 25 * 1024 * 1024

// Config describes one simulated iteration.
type Config struct {
	Model   *models.ModelSpec
	Method  Method
	Mode    Mode
	Workers int
	// Batch is the per-GPU batch size (0 → the model's paper default).
	Batch int
	// Rank is the low-rank rank (0 → the model's paper default).
	Rank int
	// TopKRatio is the Top-k density (0 → the paper's 0.1%).
	TopKRatio float64
	Net       Network
	GPU       GPU
	// BufferBytes is the fusion budget for ModeWFBPTF (0 → 25MB).
	BufferBytes int
	// NoFusion forces per-tensor communication even in ModeWFBPTF
	// (Fig. 10's "buffer size 0MB" point).
	NoFusion bool
	// SlowOrth uses the original Power-SGD orthogonalization cost (the
	// §III baseline) instead of reduced QR.
	SlowOrth bool
	// DisableEF removes the error-feedback compute (cost ablation only).
	DisableEF bool
	// NoOverlap defers every collective (and post-backward pipeline stage)
	// until the full backward pass has finished while keeping the mode's
	// bucketing — the same schedule train.Config's Overlap=off selects, so
	// predicted and measured step times compare like for like. It differs
	// from ModeNaive, which also changes how tensors are packed.
	NoOverlap bool
	// PipelineChunks mirrors train.Config.PipelineChunks in the cost model:
	// each fusion bucket's collective (and, for the gather methods, its
	// encode/decode) splits into PipelineChunks per-chunk tasks, so chunk
	// c's decode overlaps chunk c+1's wire time while every chunk pays its
	// own alpha (ring-hop latency) term — the paper's pipelining trade-off
	// (§III-B). 0 (or 1) keeps the unpipelined task graph. Applies to the
	// WFBP modes (ModeNaive has no per-bucket pipeline to chunk).
	PipelineChunks int

	// parity selects ACP's P step (0) or Q step (1); Simulate averages
	// both automatically.
	parity int
}

// Result is one simulated iteration with the paper's breakdown metrics.
type Result struct {
	TotalSec    float64
	FFBPSec     float64
	CompressSec float64
	CommSec     float64 // non-overlapped (exposed) communication
	// EncodeSec and DecodeSec split CompressSec into its two wire sides:
	// encode is every compression kernel that runs before the collective
	// (pack, selection, low-rank factor compute, EF fold), decode everything
	// after it (vote, scatter-add, P·Qᵀ reconstruction). They sum to
	// CompressSec.
	EncodeSec float64
	DecodeSec float64
	// WireSec is the total time the network was busy, overlapped or not;
	// WireSec - CommSec is the communication the schedule hid under compute.
	WireSec        float64
	OOM            bool
	MemoryBytes    float64
	PayloadBytes   float64 // per-iteration communicated payload per worker
	CompressionRat float64 // raw bytes / payload bytes
}

func (cfg *Config) validate() error {
	if cfg.Model == nil {
		return fmt.Errorf("sim: nil model")
	}
	if cfg.Workers < 1 {
		return fmt.Errorf("sim: workers must be >= 1, got %d", cfg.Workers)
	}
	switch cfg.Method {
	case MethodSSGD, MethodSign, MethodTopK, MethodPower, MethodACP:
	default:
		return fmt.Errorf("sim: unknown method %v", cfg.Method)
	}
	switch cfg.Mode {
	case ModeNaive, ModeWFBP, ModeWFBPTF:
	default:
		return fmt.Errorf("sim: unknown mode %v", cfg.Mode)
	}
	if cfg.Net.Bandwidth <= 0 && cfg.Workers > 1 {
		return fmt.Errorf("sim: network not configured")
	}
	if cfg.PipelineChunks < 0 {
		return fmt.Errorf("sim: pipeline chunks must be >= 0, got %d", cfg.PipelineChunks)
	}
	return nil
}

func (cfg *Config) batch() int {
	if cfg.Batch > 0 {
		return cfg.Batch
	}
	return cfg.Model.DefaultBatch
}

func (cfg *Config) rank() int {
	if cfg.Rank > 0 {
		return cfg.Rank
	}
	return cfg.Model.DefaultRank
}

func (cfg *Config) topKRatio() float64 {
	if cfg.TopKRatio > 0 {
		return cfg.TopKRatio
	}
	return 0.001
}

// bufferBudget resolves the fusion budget in bytes for the given payload
// compression rate (ACP scales the default budget by the compression rate,
// §IV-B; rate is 1 for uncompressed streams).
func (cfg *Config) bufferBudget(rate float64) float64 {
	if cfg.Mode == ModeWFBP || cfg.NoFusion {
		return 0
	}
	base := float64(cfg.BufferBytes)
	if base <= 0 {
		base = DefaultBufferBytes
	}
	b := base * rate
	if b < 1 {
		b = 1
	}
	return b
}

// Simulate runs one iteration and returns the time breakdown. ACP-SGD is
// simulated for both alternation parities and averaged, matching the
// paper's average-iteration-time metric.
func Simulate(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	mem := estimateMemory(&cfg)
	if mem > cfg.GPU.MemoryBytes && cfg.GPU.MemoryBytes > 0 {
		return Result{OOM: true, MemoryBytes: mem}, nil
	}
	if cfg.Method == MethodACP {
		cfg.parity = 0
		a, err := simulateOnce(&cfg)
		if err != nil {
			return Result{}, err
		}
		cfg.parity = 1
		b, err := simulateOnce(&cfg)
		if err != nil {
			return Result{}, err
		}
		avg := Result{
			TotalSec:     (a.TotalSec + b.TotalSec) / 2,
			FFBPSec:      (a.FFBPSec + b.FFBPSec) / 2,
			CompressSec:  (a.CompressSec + b.CompressSec) / 2,
			CommSec:      (a.CommSec + b.CommSec) / 2,
			EncodeSec:    (a.EncodeSec + b.EncodeSec) / 2,
			DecodeSec:    (a.DecodeSec + b.DecodeSec) / 2,
			WireSec:      (a.WireSec + b.WireSec) / 2,
			PayloadBytes: (a.PayloadBytes + b.PayloadBytes) / 2,
			MemoryBytes:  mem,
		}
		avg.CompressionRat = rawBytes(cfg.Model) / avg.PayloadBytes
		return avg, nil
	}
	r, err := simulateOnce(&cfg)
	if err != nil {
		return Result{}, err
	}
	r.MemoryBytes = mem
	r.CompressionRat = rawBytes(cfg.Model) / r.PayloadBytes
	return r, nil
}

// rawBytes is the uncompressed fp32 gradient volume.
func rawBytes(m *models.ModelSpec) float64 { return 4 * float64(m.NumParams()) }

func simulateOnce(cfg *Config) (Result, error) {
	b := newBuilder(cfg)
	switch cfg.Method {
	case MethodSSGD:
		b.buildSSGD()
	case MethodSign, MethodTopK:
		b.buildGather()
	case MethodACP:
		b.buildACP()
	case MethodPower:
		b.buildPower()
	}
	if cfg.NoOverlap {
		b.deferCommAfterBackward()
	}
	acct, err := b.eng.run()
	b.eng.release()
	b.eng = nil
	if err != nil {
		return Result{}, err
	}
	return Result{
		TotalSec:     acct.Total,
		FFBPSec:      acct.FFBP,
		CompressSec:  acct.Compress,
		CommSec:      acct.CommNonOverlap,
		EncodeSec:    acct.Encode,
		DecodeSec:    acct.Decode,
		WireSec:      acct.CommTotal,
		PayloadBytes: b.payloadBytes,
	}, nil
}
