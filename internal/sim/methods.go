package sim

import "sort"

// simMethods maps canonical compressor-registry names (see
// internal/compress.Register) onto the simulator's cost models and the
// paper's default execution mode for each. One table drives both ByName and
// Names, so adding a cost model is a single entry here.
var simMethods = map[string]struct {
	method Method
	mode   Mode
}{
	"ssgd":  {MethodSSGD, ModeWFBPTF},
	"sign":  {MethodSign, ModeNaive},
	"topk":  {MethodTopK, ModeNaive},
	"power": {MethodPower, ModeNaive},
	"acp":   {MethodACP, ModeWFBPTF},
}

// ByName resolves a canonical compressor name to its cost model and default
// execution mode. Compressors registered without a cost model (e.g. dgc)
// return ok=false: they are trainable but not simulatable.
func ByName(name string) (m Method, defaultMode Mode, ok bool) {
	e, ok := simMethods[name]
	if !ok {
		return 0, 0, false
	}
	return e.method, e.mode, true
}

// Names returns the simulatable method names, sorted.
func Names() []string {
	out := make([]string, 0, len(simMethods))
	for name := range simMethods {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
