package sim

import (
	"acpsgd/internal/models"
)

// tensorInfo carries the per-tensor quantities the graph builders need.
type tensorInfo struct {
	spec     models.TensorSpec
	isMatrix bool
	rEff     int
	bwdDur   float64
}

// builder assembles the task graph of one iteration.
type builder struct {
	cfg *Config
	eng *engine

	// tensors in back-propagation (reverse) order.
	tensors []tensorInfo
	fwdDur  float64

	// payloadBytes accumulates the per-worker communicated volume.
	payloadBytes float64
}

func newBuilder(cfg *Config) *builder {
	b := &builder{cfg: cfg, eng: newEngine(cfg.GPU.InterferenceRate)}

	spec := cfg.Model
	totalFLOPs := spec.TotalFwdFLOPs()
	computeSec := spec.RefComputeSec * cfg.GPU.batchScale(cfg.batch(), spec.DefaultBatch)
	fwdSec := computeSec / 3
	bwdSec := computeSec * 2 / 3
	b.fwdDur = fwdSec

	rank := cfg.rank()
	// Reverse (back-propagation) order.
	for i := len(spec.Tensors) - 1; i >= 0; i-- {
		t := spec.Tensors[i]
		ti := tensorInfo{
			spec:     t,
			isMatrix: t.IsMatrix(),
			bwdDur:   bwdSec * t.FwdFLOPs / totalFLOPs,
		}
		if ti.isMatrix {
			r := rank
			if r > t.Rows {
				r = t.Rows
			}
			if r > t.Cols {
				r = t.Cols
			}
			if r < 1 {
				r = 1
			}
			ti.rEff = r
		}
		b.tensors = append(b.tensors, ti)
	}
	return b
}

// ---- cost helpers ----------------------------------------------------

// qrCost is the per-tensor orthogonalization cost; the original Power-SGD
// orthogonalization (SlowOrth) scales with the rank (per-column
// Gram-Schmidt), the reduced QR of §V-A does not.
func (b *builder) qrCost(r int) float64 {
	g := b.cfg.GPU
	if b.cfg.SlowOrth {
		f := g.SlowOrthFactor
		if f <= 0 {
			f = 1
		}
		return g.QRPerTensor * f * float64(r)
	}
	return g.QRPerTensor
}

// efFLOPs is the error-feedback update cost in FLOPs (P·Qᵀ plus the
// subtraction) for an n x m tensor at rank r.
func (b *builder) efFLOPs(n, m, r int) float64 {
	if b.cfg.DisableEF {
		return 0
	}
	return 2*float64(n*m*r) + float64(n*m)
}

// acpCompressDur is ACP-SGD's per-tensor, per-step compression: one
// orthogonalization of the reused factor, one matmul, and the EF update
// (half of Power-SGD's work, §IV-A).
func (b *builder) acpCompressDur(t tensorInfo) float64 {
	g := b.cfg.GPU
	n, m, r := t.spec.Rows, t.spec.Cols, t.rEff
	orthDim := m // odd step orthogonalizes Q (m x r)
	if b.cfg.parity == 1 {
		orthDim = n
	}
	flops := 2*float64(n*m*r) + 2*float64(orthDim*r*r) + b.efFLOPs(n, m, r)
	return flops/g.LowRankFLOPS + b.qrCost(r) + 3*g.KernelLaunch
}

// acpDecompressDur is the P·Qᵀ reconstruction.
func (b *builder) acpDecompressDur(t tensorInfo) float64 {
	g := b.cfg.GPU
	flops := 2 * float64(t.spec.Rows*t.spec.Cols*t.rEff)
	return flops/g.LowRankFLOPS + g.KernelLaunch
}

// Power-SGD's three compute stages per tensor (Algorithm 1): compute P;
// orthogonalize+compute Q (+EF); decompress.
func (b *builder) powerStage1Dur(t tensorInfo) float64 {
	g := b.cfg.GPU
	return 2*float64(t.spec.Rows*t.spec.Cols*t.rEff)/g.LowRankFLOPS + g.KernelLaunch
}

func (b *builder) powerStage2Dur(t tensorInfo) float64 {
	g := b.cfg.GPU
	n, m, r := t.spec.Rows, t.spec.Cols, t.rEff
	flops := 2*float64(n*r*r) + 2*float64(n*m*r) + b.efFLOPs(n, m, r)
	return flops/g.LowRankFLOPS + b.qrCost(r) + 2*g.KernelLaunch
}

func (b *builder) powerStage3Dur(t tensorInfo) float64 {
	return b.acpDecompressDur(t)
}

// signEncodeDur / signDecodeDur: pack N sign bits; majority-vote over p
// workers' packed payloads.
func (b *builder) signEncodeDur(elems int) float64 {
	g := b.cfg.GPU
	return float64(elems)/g.SignThroughput + g.KernelLaunch
}

func (b *builder) signDecodeDur(elems int) float64 {
	g := b.cfg.GPU
	votes := float64(b.cfg.Workers) / 32
	if votes < 1 {
		votes = 1
	}
	return float64(elems)*votes/g.SignThroughput + g.KernelLaunch
}

// topkEncodeDur / topkDecodeDur: multi-sampling threshold selection scans
// the full tensor; decode scatter-adds p*k pairs.
func (b *builder) topkEncodeDur(elems int) float64 {
	g := b.cfg.GPU
	return float64(elems)/g.TopKThroughput + g.KernelLaunch
}

func (b *builder) topkDecodeDur(elems int) float64 {
	g := b.cfg.GPU
	k := float64(elems) * b.cfg.topKRatio()
	return float64(b.cfg.Workers)*k/g.SignThroughput + g.KernelLaunch
}

// payloadBytesFor returns the per-tensor communicated bytes for the current
// method (fp32 wire accounting as in the paper).
func (b *builder) payloadBytesFor(t tensorInfo) float64 {
	switch b.cfg.Method {
	case MethodSSGD:
		return 4 * float64(t.spec.Elems())
	case MethodSign:
		return float64(t.spec.Elems()) / 8
	case MethodTopK:
		k := float64(t.spec.Elems()) * b.cfg.topKRatio()
		if k < 1 {
			k = 1
		}
		return 8 * k
	case MethodACP:
		if !t.isMatrix {
			return 4 * float64(t.spec.Elems())
		}
		if b.cfg.parity == 0 {
			return 4 * float64(t.rEff*t.spec.Rows)
		}
		return 4 * float64(t.rEff*t.spec.Cols)
	case MethodPower:
		if !t.isMatrix {
			return 4 * float64(t.spec.Elems())
		}
		return 4 * float64(t.rEff*(t.spec.Rows+t.spec.Cols))
	}
	return 0
}

// deferCommAfterBackward retrofits the Overlap=off schedule onto a built
// task graph: every network task and every side-stream pipeline task gains
// the final backward task as an extra dependency, so nothing launches until
// back-propagation completes. Bucketing (and therefore message sizes and
// counts) is untouched — this is exactly the launch-deferral the trainer's
// Overlap knob performs, the term that turns overlapped communication into
// non-overlapped step time.
func (b *builder) deferCommAfterBackward() {
	var lastBwd *task
	for _, t := range b.eng.streams[mainStream] {
		if t.kind == kindFwdBwd {
			lastBwd = t
		}
	}
	if lastBwd == nil {
		return
	}
	for _, t := range b.eng.streams[netStream] {
		t.deps = append(t.deps, lastBwd)
	}
	for _, t := range b.eng.streams[sideStream] {
		t.deps = append(t.deps, lastBwd)
	}
}

// chunks resolves the pipelining degree: 1 when the knob is off.
func (b *builder) chunks() int {
	if b.cfg.PipelineChunks > 1 {
		return b.cfg.PipelineChunks
	}
	return 1
}

// allReduce appends an all-reduce task for `bytes` and records the payload.
func (b *builder) allReduce(bytes float64, deps ...*task) *task {
	b.payloadBytes += bytes
	return b.eng.add(netStream, kindComm, b.cfg.Net.AllReduceTime(b.cfg.Workers, bytes), deps...)
}

// allReduceChunked appends the bucket's all-reduce as PipelineChunks
// per-chunk tasks (in order on the network stream) and returns the last —
// the pipelined ring: same volume, one extra alpha set per chunk, finer
// overlap with whatever else is runnable. With chunking off it is a plain
// allReduce.
func (b *builder) allReduceChunked(bytes float64, deps ...*task) *task {
	m := b.chunks()
	if m == 1 {
		return b.allReduce(bytes, deps...)
	}
	var last *task
	for c := 0; c < m; c++ {
		last = b.allReduce(bytes/float64(m), deps...)
	}
	return last
}

// allGather appends an all-gather task for a per-worker payload of `bytes`.
func (b *builder) allGather(bytes float64, deps ...*task) *task {
	b.payloadBytes += bytes
	return b.eng.add(netStream, kindComm, b.cfg.Net.AllGatherTime(b.cfg.Workers, bytes), deps...)
}

// addForward queues the forward pass.
func (b *builder) addForward() *task {
	return b.eng.add(mainStream, kindFwdBwd, b.fwdDur)
}

// shouldFlush decides fusion-buffer boundaries. A zero budget disables
// tensor fusion entirely: every tensor ships in its own collective (the
// paper's "buffer size 0MB, optimal WFBP, no TF" extreme).
func shouldFlush(budget, bucketBytes float64) bool {
	if budget <= 0 {
		return bucketBytes > 0
	}
	return bucketBytes >= budget
}

// ---- S-SGD ------------------------------------------------------------

func (b *builder) buildSSGD() {
	b.addForward()
	switch b.cfg.Mode {
	case ModeNaive:
		// Tensor-wise aggregation strictly after back-propagation: no
		// overlap, no fusion (Fig. 9's "Naive", i.e. Fig. 1(a)).
		var last *task
		for _, t := range b.tensors {
			last = b.eng.add(mainStream, kindFwdBwd, t.bwdDur)
		}
		for _, t := range b.tensors {
			b.allReduce(b.payloadBytesFor(t), last)
		}
	default:
		budget := b.cfg.bufferBudget(1)
		var bucketBytes float64
		var lastBwd *task
		flush := func() {
			if bucketBytes > 0 {
				b.allReduceChunked(bucketBytes, lastBwd)
				bucketBytes = 0
			}
		}
		for _, t := range b.tensors {
			lastBwd = b.eng.add(mainStream, kindFwdBwd, t.bwdDur)
			bucketBytes += b.payloadBytesFor(t)
			if shouldFlush(budget, bucketBytes) {
				flush()
			}
		}
		flush()
	}
}

// ---- Sign-SGD / Top-k SGD ----------------------------------------------

func (b *builder) encodeDur(elems int) float64 {
	if b.cfg.Method == MethodSign {
		return b.signEncodeDur(elems)
	}
	return b.topkEncodeDur(elems)
}

func (b *builder) decodeDur(elems int) float64 {
	if b.cfg.Method == MethodSign {
		return b.signDecodeDur(elems)
	}
	return b.topkDecodeDur(elems)
}

func (b *builder) buildGather() {
	b.addForward()
	switch b.cfg.Mode {
	case ModeNaive:
		var last *task
		elems := 0
		bytes := 0.0
		for _, t := range b.tensors {
			last = b.eng.add(mainStream, kindFwdBwd, t.bwdDur)
			elems += t.spec.Elems()
			bytes += b.payloadBytesFor(t)
		}
		enc := b.eng.add(mainStream, kindEncode, b.encodeDur(elems), last)
		ag := b.allGather(bytes, enc)
		b.eng.add(mainStream, kindDecode, b.decodeDur(elems), ag)
	default:
		budget := b.cfg.bufferBudget(1)
		m := b.chunks()
		type bucket struct {
			comm  []*task // per-chunk all-gather tasks
			elems int
		}
		var buckets []bucket
		var bucketBytes float64
		bucketElems := 0
		flush := func() {
			if bucketElems == 0 {
				return
			}
			// Chunk pipeline inside the bucket: encode chunk c (main stream,
			// inline with backward), all-gather chunk c, and later decode
			// chunk c as soon as it lands — so chunk c's decode overlaps
			// chunk c+1's wire time while every chunk pays its own hop
			// alphas and kernel launches. m == 1 is the unpipelined graph.
			// Chunk element counts use the exact chunkRange-style split so
			// compute cost never truncates away at high chunk counts.
			bk := bucket{elems: bucketElems}
			for c := 0; c < m; c++ {
				chunkElems := (c+1)*bucketElems/m - c*bucketElems/m
				enc := b.eng.add(mainStream, kindEncode, b.encodeDur(chunkElems))
				bk.comm = append(bk.comm, b.allGather(bucketBytes/float64(m), enc))
			}
			buckets = append(buckets, bk)
			bucketBytes = 0
			bucketElems = 0
		}
		for _, t := range b.tensors {
			b.eng.add(mainStream, kindFwdBwd, t.bwdDur)
			bucketBytes += b.payloadBytesFor(t)
			bucketElems += t.spec.Elems()
			if shouldFlush(budget, bucketBytes) {
				flush()
			}
		}
		flush()
		for _, bk := range buckets {
			mm := len(bk.comm)
			for c, ag := range bk.comm {
				chunkElems := (c+1)*bk.elems/mm - c*bk.elems/mm
				b.eng.add(mainStream, kindDecode, b.decodeDur(chunkElems), ag)
			}
		}
	}
}

// ---- ACP-SGD ------------------------------------------------------------

// acpRate is the payload compression rate that scales the fusion budget
// (§IV-B: compressed buffer size = default buffer size x compression rate).
func (b *builder) acpRate() float64 {
	spec := b.cfg.Model
	odd := b.cfg.parity == 0
	return float64(spec.ACPPayloadElems(b.cfg.rank(), odd)) / float64(spec.NumParams())
}

func (b *builder) buildACP() {
	b.addForward()
	switch b.cfg.Mode {
	case ModeNaive:
		// Compress everything after back-propagation, then aggregate
		// tensor-wise without overlap, then decompress.
		var last *task
		var compressDur, decompressDur float64
		for _, t := range b.tensors {
			last = b.eng.add(mainStream, kindFwdBwd, t.bwdDur)
			if t.isMatrix {
				compressDur += b.acpCompressDur(t)
				decompressDur += b.acpDecompressDur(t)
			}
		}
		comp := b.eng.add(mainStream, kindEncode, compressDur, last)
		var lastAR *task
		for _, t := range b.tensors {
			lastAR = b.allReduce(b.payloadBytesFor(t), comp)
		}
		b.eng.add(mainStream, kindDecode, decompressDur, lastAR)
	default:
		budget := b.cfg.bufferBudget(b.acpRate())
		type bucket struct {
			comm          *task
			decompressDur float64
		}
		var buckets []bucket
		var bucketBytes, bucketDecomp float64
		var lastMain *task
		flush := func() {
			if bucketBytes == 0 {
				return
			}
			// The pipelined ring splits the bucket's all-reduce; the P·Qᵀ
			// reconstruction still waits for the whole bucket, mirroring the
			// trainer (additive finalize is not chunked).
			ar := b.allReduceChunked(bucketBytes, lastMain)
			buckets = append(buckets, bucket{comm: ar, decompressDur: bucketDecomp})
			bucketBytes = 0
			bucketDecomp = 0
		}
		for _, t := range b.tensors {
			lastMain = b.eng.add(mainStream, kindFwdBwd, t.bwdDur)
			if t.isMatrix {
				// Inline compression on the main stream right after the
				// gradient is ready (Fig. 4(c)): sequential with BP, no
				// stream interference.
				lastMain = b.eng.add(mainStream, kindEncode, b.acpCompressDur(t))
				bucketDecomp += b.acpDecompressDur(t)
			}
			bucketBytes += b.payloadBytesFor(t)
			if shouldFlush(budget, bucketBytes) {
				flush()
			}
		}
		flush()
		for _, bk := range buckets {
			b.eng.add(mainStream, kindDecode, bk.decompressDur, bk.comm)
		}
	}
}

// ---- Power-SGD ------------------------------------------------------------

// shapeKey groups matrix tensors by shape — the original Power-SGD
// implementation batches same-shape matrices for aggregation.
type shapeKey struct{ n, m int }

func (b *builder) buildPower() {
	b.addForward()
	p := b.cfg.Workers
	_ = p
	switch b.cfg.Mode {
	case ModeNaive:
		// Original Power-SGD [24]: all compression after BP; per shape
		// group aggregation of P, then of Q; vectors aggregated raw.
		var last *task
		var stage1, stage2, stage3, vecBytes float64
		groupP := map[shapeKey]float64{}
		groupQ := map[shapeKey]float64{}
		var order []shapeKey
		for _, t := range b.tensors {
			last = b.eng.add(mainStream, kindFwdBwd, t.bwdDur)
			if !t.isMatrix {
				vecBytes += 4 * float64(t.spec.Elems())
				continue
			}
			stage1 += b.powerStage1Dur(t)
			stage2 += b.powerStage2Dur(t)
			stage3 += b.powerStage3Dur(t)
			k := shapeKey{t.spec.Rows, t.spec.Cols}
			if _, ok := groupP[k]; !ok {
				order = append(order, k)
			}
			groupP[k] += 4 * float64(t.rEff*t.spec.Rows)
			groupQ[k] += 4 * float64(t.rEff*t.spec.Cols)
		}
		if vecBytes > 0 {
			b.allReduce(vecBytes, last)
		}
		s1 := b.eng.add(mainStream, kindEncode, stage1, last)
		var arPs []*task
		for _, k := range order {
			arPs = append(arPs, b.allReduce(groupP[k], s1))
		}
		s2 := b.eng.add(mainStream, kindEncode, stage2, arPs...)
		var arQs []*task
		for _, k := range order {
			arQs = append(arQs, b.allReduce(groupQ[k], s2))
		}
		b.eng.add(mainStream, kindDecode, stage3, arQs...)
	default:
		// Power-SGD* (PyTorch DDP comm hook): buckets of raw gradient
		// bytes; per bucket the blocking chain P-compute → all-reduce P →
		// orthogonalize+Q-compute → all-reduce Q → decompress runs on the
		// side compute stream, competing with back-propagation (§III-C,
		// Fig. 4(b)).
		budget := b.cfg.bufferBudget(1)
		var rawB, pBytes, qBytes, vecBytes float64
		var s1d, s2d, s3d float64
		var lastBwd *task
		flush := func() {
			if rawB == 0 {
				return
			}
			if vecBytes > 0 {
				b.allReduce(vecBytes, lastBwd)
			}
			if pBytes > 0 {
				s1 := b.eng.add(sideStream, kindEncode, s1d, lastBwd)
				arp := b.allReduce(pBytes, s1)
				s2 := b.eng.add(sideStream, kindEncode, s2d, arp)
				arq := b.allReduce(qBytes, s2)
				b.eng.add(sideStream, kindDecode, s3d, arq)
			}
			rawB, pBytes, qBytes, vecBytes = 0, 0, 0, 0
			s1d, s2d, s3d = 0, 0, 0
		}
		for _, t := range b.tensors {
			lastBwd = b.eng.add(mainStream, kindFwdBwd, t.bwdDur)
			rawB += 4 * float64(t.spec.Elems())
			if t.isMatrix {
				pBytes += 4 * float64(t.rEff*t.spec.Rows)
				qBytes += 4 * float64(t.rEff*t.spec.Cols)
				s1d += b.powerStage1Dur(t)
				s2d += b.powerStage2Dur(t)
				s3d += b.powerStage3Dur(t)
			} else {
				vecBytes += 4 * float64(t.spec.Elems())
			}
			if shouldFlush(budget, rawB) {
				flush()
			}
		}
		flush()
	}
}

// ---- memory model ----------------------------------------------------

// estimateMemory reproduces the Fig. 2 OOM: Sign-SGD's majority-vote decode
// materializes every worker's unpacked sign tensor (p x N bytes), which
// exhausts an 11GB GPU on BERT-Large at p=32.
func estimateMemory(cfg *Config) float64 {
	n := float64(cfg.Model.NumParams())
	base := 3*4*n + // params + grads + momentum (fp32)
		float64(cfg.batch())*cfg.Model.ActBytesPerExample +
		0.8e9 // CUDA context + framework overhead
	switch cfg.Method {
	case MethodSign:
		return base + 4*n + // error feedback
			float64(cfg.Workers)*n // unpacked vote workspace (1 byte/elem/worker)
	case MethodTopK:
		k := n * cfg.topKRatio()
		return base + 4*n + float64(cfg.Workers)*8*k
	case MethodPower, MethodACP:
		return base + 4*n + // error feedback
			8*float64(cfg.Model.PowerCompressedElems(cfg.rank()))
	default:
		return base
	}
}
