package sim

import (
	"fmt"
	"math"
	"sync"
)

// streamID identifies an execution stream. Streams execute their tasks
// strictly in submission order (CUDA in-order stream semantics); cross-
// stream dependencies are explicit. mainStream carries forward/backward and
// inline compression, sideStream carries pipeline tasks triggered by
// communication completion (the Power-SGD* comm-hook pipeline), netStream
// carries collectives.
type streamID int

const (
	mainStream streamID = iota
	sideStream
	netStream
	numStreams
)

// taskKind buckets tasks for the paper's time-breakdown accounting.
// kindEncode and kindDecode are the two halves of compression: both are
// accounted under Compress, and additionally under their own phase so the
// report can split the compression overhead into its encode (pre-wire) and
// decode (post-wire) sides. kindCompress remains for compute that genuinely
// has no side of the wire (and for hand-built test graphs).
type taskKind int

const (
	kindFwdBwd taskKind = iota + 1
	kindCompress
	kindEncode
	kindDecode
	kindComm
)

// task is one unit of work on a stream.
type task struct {
	id     int
	stream streamID
	kind   taskKind
	dur    float64 // base duration in seconds
	deps   []*task

	remaining float64
	done      bool
	finish    float64
}

// taskBlockSize is the slab granularity: tasks are allocated out of
// fixed-capacity blocks so pointers handed to callers stay valid while the
// blocks themselves are reused across Simulate calls. 512 covers a full
// BERT-Large WFBP graph in one block.
const taskBlockSize = 512

// engine is a processor-sharing discrete-event simulator over the three
// in-order streams. The two compute streams contend for the GPU: when both
// are busy each progresses at InterferenceRate < 1 (overlapping compression
// with back-propagation is a net loss, §III-C); the network stream always
// runs at full rate.
//
// Engines are pooled: the fleet engine prices one iteration per membership
// change and the scenario suites run thousands of Simulate calls, so the
// task graph is the hot allocation path. newEngine draws a recycled engine
// whose task slab and stream queues keep their capacity; release returns it.
type engine struct {
	streams [numStreams][]*task
	nextID  int
	rate    float64 // interference rate

	// task slab: blocks never move once allocated, so *task stays valid.
	blocks [][]task
	nblock int // block currently being filled
	nused  int // tasks used in blocks[nblock]
}

var enginePool = sync.Pool{New: func() any { return new(engine) }}

func newEngine(interferenceRate float64) *engine {
	if interferenceRate <= 0 || interferenceRate > 1 {
		interferenceRate = 0.35
	}
	e := enginePool.Get().(*engine)
	e.reset(interferenceRate)
	return e
}

// reset clears the engine for a new task graph while keeping every
// allocation (stream queues, slab blocks, dep slices) for reuse.
func (e *engine) reset(rate float64) {
	for s := range e.streams {
		e.streams[s] = e.streams[s][:0]
	}
	e.nextID = 0
	e.rate = rate
	e.nblock, e.nused = 0, 0
}

// release returns the engine to the pool. The caller must not hold any
// *task from this engine afterwards.
func (e *engine) release() { enginePool.Put(e) }

// alloc hands out the next task slot from the slab.
func (e *engine) alloc() *task {
	if e.nblock == len(e.blocks) {
		e.blocks = append(e.blocks, make([]task, taskBlockSize))
	}
	t := &e.blocks[e.nblock][e.nused]
	e.nused++
	if e.nused == taskBlockSize {
		e.nblock++
		e.nused = 0
	}
	return t
}

// add appends a task to a stream and returns it.
func (e *engine) add(s streamID, kind taskKind, dur float64, deps ...*task) *task {
	t := e.alloc()
	reuse := t.deps[:0] // keep the recycled dep slice's capacity
	*t = task{
		id:        e.nextID,
		stream:    s,
		kind:      kind,
		dur:       dur,
		deps:      append(reuse, deps...),
		remaining: dur,
	}
	e.nextID++
	e.streams[s] = append(e.streams[s], t)
	return t
}

// accounting is the paper's iteration-time breakdown: FF&BP, compression
// (+decompression), and non-overlapped communication. The three parts sum
// to the makespan: GPU time is attributed to the running task's kind (split
// evenly when both compute streams are busy) and communication only counts
// when no compute stream is active, which is exactly the paper's
// "non-overlapped overhead" metric (§III-A).
//
// Encode and Decode split Compress into its two wire sides (Encode + Decode
// == Compress when every compression task declares a side); CommTotal is
// the wall-clock the network stream spent busy, overlapped or not, so
// CommTotal - CommNonOverlap is the communication the schedule hid.
type accounting struct {
	Total          float64
	FFBP           float64
	Compress       float64
	Encode         float64
	Decode         float64
	CommNonOverlap float64
	CommTotal      float64
}

// run executes all tasks to completion and returns the accounting.
func (e *engine) run() (accounting, error) {
	heads := [numStreams]int{}
	var acct accounting
	now := 0.0
	const eps = 1e-15

	pending := 0
	for _, q := range e.streams {
		pending += len(q)
	}

	for pending > 0 {
		// Find the active head of each stream (deps satisfied).
		var active [numStreams]*task
		anyActive := false
		for s := streamID(0); s < numStreams; s++ {
			if heads[s] >= len(e.streams[s]) {
				continue
			}
			h := e.streams[s][heads[s]]
			ready := true
			for _, d := range h.deps {
				if !d.done {
					ready = false
					break
				}
			}
			if ready {
				active[s] = h
				anyActive = true
			}
		}
		if !anyActive {
			return acct, fmt.Errorf("sim: deadlock with %d tasks pending", pending)
		}

		// Compute rates: compute streams share the GPU.
		bothCompute := active[mainStream] != nil && active[sideStream] != nil
		rates := [numStreams]float64{1, 1, 1}
		if bothCompute {
			rates[mainStream] = e.rate
			rates[sideStream] = e.rate
		}

		// Advance to the next completion.
		dt := math.Inf(1)
		for s := streamID(0); s < numStreams; s++ {
			if active[s] == nil {
				continue
			}
			t := active[s].remaining / rates[s]
			if t < dt {
				dt = t
			}
		}
		if math.IsInf(dt, 1) || dt < 0 {
			return acct, fmt.Errorf("sim: invalid time step")
		}

		// Attribute the interval.
		computeActive := 0
		if active[mainStream] != nil {
			computeActive++
		}
		if active[sideStream] != nil {
			computeActive++
		}
		if computeActive > 0 {
			share := dt / float64(computeActive)
			for _, s := range []streamID{mainStream, sideStream} {
				if active[s] == nil {
					continue
				}
				switch active[s].kind {
				case kindFwdBwd:
					acct.FFBP += share
				case kindEncode:
					acct.Compress += share
					acct.Encode += share
				case kindDecode:
					acct.Compress += share
					acct.Decode += share
				default:
					acct.Compress += share
				}
			}
		} else if active[netStream] != nil {
			acct.CommNonOverlap += dt
		}
		if active[netStream] != nil {
			acct.CommTotal += dt
		}

		now += dt
		for s := streamID(0); s < numStreams; s++ {
			if active[s] == nil {
				continue
			}
			active[s].remaining -= rates[s] * dt
			if active[s].remaining <= eps {
				active[s].remaining = 0
				active[s].done = true
				active[s].finish = now
				heads[s]++
				pending--
			}
		}
	}
	acct.Total = now
	return acct, nil
}
