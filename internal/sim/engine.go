package sim

import (
	"fmt"
	"math"
)

// streamID identifies an execution stream. Streams execute their tasks
// strictly in submission order (CUDA in-order stream semantics); cross-
// stream dependencies are explicit. mainStream carries forward/backward and
// inline compression, sideStream carries pipeline tasks triggered by
// communication completion (the Power-SGD* comm-hook pipeline), netStream
// carries collectives.
type streamID int

const (
	mainStream streamID = iota
	sideStream
	netStream
	numStreams
)

// taskKind buckets tasks for the paper's time-breakdown accounting.
type taskKind int

const (
	kindFwdBwd taskKind = iota + 1
	kindCompress
	kindComm
)

// task is one unit of work on a stream.
type task struct {
	id     int
	stream streamID
	kind   taskKind
	dur    float64 // base duration in seconds
	deps   []*task

	remaining float64
	done      bool
	finish    float64
}

// engine is a processor-sharing discrete-event simulator over the three
// in-order streams. The two compute streams contend for the GPU: when both
// are busy each progresses at InterferenceRate < 1 (overlapping compression
// with back-propagation is a net loss, §III-C); the network stream always
// runs at full rate.
type engine struct {
	streams [numStreams][]*task
	nextID  int
	rate    float64 // interference rate
}

func newEngine(interferenceRate float64) *engine {
	if interferenceRate <= 0 || interferenceRate > 1 {
		interferenceRate = 0.35
	}
	return &engine{rate: interferenceRate}
}

// add appends a task to a stream and returns it.
func (e *engine) add(s streamID, kind taskKind, dur float64, deps ...*task) *task {
	t := &task{
		id:        e.nextID,
		stream:    s,
		kind:      kind,
		dur:       dur,
		deps:      deps,
		remaining: dur,
	}
	e.nextID++
	e.streams[s] = append(e.streams[s], t)
	return t
}

// accounting is the paper's iteration-time breakdown: FF&BP, compression
// (+decompression), and non-overlapped communication. The three parts sum
// to the makespan: GPU time is attributed to the running task's kind (split
// evenly when both compute streams are busy) and communication only counts
// when no compute stream is active, which is exactly the paper's
// "non-overlapped overhead" metric (§III-A).
type accounting struct {
	Total          float64
	FFBP           float64
	Compress       float64
	CommNonOverlap float64
}

// run executes all tasks to completion and returns the accounting.
func (e *engine) run() (accounting, error) {
	heads := [numStreams]int{}
	var acct accounting
	now := 0.0
	const eps = 1e-15

	pending := 0
	for _, q := range e.streams {
		pending += len(q)
	}

	for pending > 0 {
		// Find the active head of each stream (deps satisfied).
		var active [numStreams]*task
		anyActive := false
		for s := streamID(0); s < numStreams; s++ {
			if heads[s] >= len(e.streams[s]) {
				continue
			}
			h := e.streams[s][heads[s]]
			ready := true
			for _, d := range h.deps {
				if !d.done {
					ready = false
					break
				}
			}
			if ready {
				active[s] = h
				anyActive = true
			}
		}
		if !anyActive {
			return acct, fmt.Errorf("sim: deadlock with %d tasks pending", pending)
		}

		// Compute rates: compute streams share the GPU.
		bothCompute := active[mainStream] != nil && active[sideStream] != nil
		rates := [numStreams]float64{1, 1, 1}
		if bothCompute {
			rates[mainStream] = e.rate
			rates[sideStream] = e.rate
		}

		// Advance to the next completion.
		dt := math.Inf(1)
		for s := streamID(0); s < numStreams; s++ {
			if active[s] == nil {
				continue
			}
			t := active[s].remaining / rates[s]
			if t < dt {
				dt = t
			}
		}
		if math.IsInf(dt, 1) || dt < 0 {
			return acct, fmt.Errorf("sim: invalid time step")
		}

		// Attribute the interval.
		computeActive := 0
		if active[mainStream] != nil {
			computeActive++
		}
		if active[sideStream] != nil {
			computeActive++
		}
		if computeActive > 0 {
			share := dt / float64(computeActive)
			for _, s := range []streamID{mainStream, sideStream} {
				if active[s] == nil {
					continue
				}
				switch active[s].kind {
				case kindFwdBwd:
					acct.FFBP += share
				default:
					acct.Compress += share
				}
			}
		} else if active[netStream] != nil {
			acct.CommNonOverlap += dt
		}

		now += dt
		for s := streamID(0); s < numStreams; s++ {
			if active[s] == nil {
				continue
			}
			active[s].remaining -= rates[s] * dt
			if active[s].remaining <= eps {
				active[s].remaining = 0
				active[s].done = true
				active[s].finish = now
				heads[s]++
				pending--
			}
		}
	}
	acct.Total = now
	return acct, nil
}
