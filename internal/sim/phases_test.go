package sim

import (
	"math"
	"testing"

	"acpsgd/internal/models"
)

// These tests pin the per-phase split added to Result: EncodeSec and
// DecodeSec partition CompressSec for every real method graph, and WireSec
// (total network busy time) dominates CommSec (the exposed remainder).

func phaseCases() []struct {
	name   string
	method Method
	mode   Mode
} {
	return []struct {
		name   string
		method Method
		mode   Mode
	}{
		{"ssgd-naive", MethodSSGD, ModeNaive},
		{"ssgd-tf", MethodSSGD, ModeWFBPTF},
		{"sign-naive", MethodSign, ModeNaive},
		{"topk-naive", MethodTopK, ModeNaive},
		{"power-naive", MethodPower, ModeNaive},
		{"power-tf", MethodPower, ModeWFBPTF},
		{"acp-naive", MethodACP, ModeNaive},
		{"acp-wfbp", MethodACP, ModeWFBP},
		{"acp-tf", MethodACP, ModeWFBPTF},
	}
}

func TestEncodeDecodePartitionCompress(t *testing.T) {
	for _, tc := range phaseCases() {
		r := simulate(t, func(c *Config) {
			c.Model = models.BERTBase()
			c.Method = tc.method
			c.Mode = tc.mode
		})
		if r.OOM {
			continue
		}
		sum := r.EncodeSec + r.DecodeSec
		if math.Abs(sum-r.CompressSec) > 1e-9 {
			t.Fatalf("%s: encode (%v) + decode (%v) != compress (%v)", tc.name, r.EncodeSec, r.DecodeSec, r.CompressSec)
		}
		if r.EncodeSec < 0 || r.DecodeSec < 0 {
			t.Fatalf("%s: negative phase time: %+v", tc.name, r)
		}
		if tc.method == MethodSSGD && sum != 0 {
			t.Fatalf("%s: S-SGD has no compression phases, got %v", tc.name, sum)
		}
		if tc.method != MethodSSGD && (r.EncodeSec == 0 || r.DecodeSec == 0) {
			t.Fatalf("%s: compressed method must pay both encode and decode: %+v", tc.name, r)
		}
	}
}

func TestWireSecDominatesExposedComm(t *testing.T) {
	for _, tc := range phaseCases() {
		r := simulate(t, func(c *Config) {
			c.Model = models.BERTBase()
			c.Method = tc.method
			c.Mode = tc.mode
		})
		if r.OOM {
			continue
		}
		if r.WireSec < r.CommSec-1e-9 {
			t.Fatalf("%s: wire time %v below exposed comm %v", tc.name, r.WireSec, r.CommSec)
		}
		if r.WireSec <= 0 {
			t.Fatalf("%s: multi-worker run must use the wire", tc.name)
		}
	}
}

func TestNaiveModeExposesAllWireTime(t *testing.T) {
	// Without overlap every wire second is exposed: the naive schedule runs
	// compute, then compression, then communication strictly in sequence.
	r := simulate(t, func(c *Config) {
		c.Model = models.ResNet50()
		c.Method = MethodSSGD
		c.Mode = ModeNaive
	})
	if math.Abs(r.WireSec-r.CommSec) > 1e-9 {
		t.Fatalf("naive S-SGD should hide nothing: wire %v vs exposed %v", r.WireSec, r.CommSec)
	}
}

func TestOverlapHidesWireTime(t *testing.T) {
	// WFBP+TF overlaps communication under backprop: some wire time must be
	// hidden (WireSec > CommSec), and the hidden share is what the paper's
	// optimized S-SGD gains.
	r := simulate(t, func(c *Config) {
		c.Model = models.ResNet50()
		c.Method = MethodSSGD
		c.Mode = ModeWFBPTF
	})
	if r.WireSec <= r.CommSec {
		t.Fatalf("overlap should hide wire time: wire %v vs exposed %v", r.WireSec, r.CommSec)
	}
}

func TestEncodeOutweighsDecodeForLowRank(t *testing.T) {
	// Power/ACP encode does two GEMMs plus an orthogonalization; decode is a
	// single small GEMM. The split must reflect that asymmetry.
	for _, method := range []Method{MethodPower, MethodACP} {
		r := simulate(t, func(c *Config) {
			c.Model = models.BERTLarge()
			c.Method = method
			c.Mode = ModeNaive
		})
		if r.EncodeSec <= r.DecodeSec {
			t.Fatalf("%v: encode (%v) should outweigh decode (%v)", method, r.EncodeSec, r.DecodeSec)
		}
	}
}

func TestPhaseSplitSurvivesPipelining(t *testing.T) {
	// Chunk pipelining rearranges the schedule but not the work: the
	// partition invariant must hold with pipeline chunks enabled too.
	r := simulate(t, func(c *Config) {
		c.Model = models.BERTLarge()
		c.Method = MethodACP
		c.Mode = ModeWFBPTF
		c.PipelineChunks = 4
	})
	if math.Abs(r.EncodeSec+r.DecodeSec-r.CompressSec) > 1e-9 {
		t.Fatalf("pipelined split broken: %+v", r)
	}
	if r.WireSec < r.CommSec-1e-9 {
		t.Fatalf("pipelined wire accounting broken: %+v", r)
	}
}
