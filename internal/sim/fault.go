package sim

import (
	"fmt"
	"math/rand"
)

// This file is the scenario engine's failure injector. Faults come from two
// sources: seeded random distributions (per-node crash/transient hazards, a
// per-step zone-outage hazard, and a cascade multiplier that raises every
// hazard in the window after a failure — failures cluster in real fleets)
// and a scripted list for exactly reproducible single events ("crash node 2
// at step 6"), which is what the cross-validation suite uses to line the
// simulator up against a real elastic train.Cluster run.

// Fault and membership-event kinds.
const (
	// FaultCrash permanently removes a node: its heartbeats stop, the epoch
	// re-forms without it (the train.Cluster kill path).
	FaultCrash = "crash"
	// FaultTransient is a link fault on a node that keeps heartbeating: the
	// epoch re-forms at the same size, paying one recovery.
	FaultTransient = "transient"
	// FaultZoneOutage crashes every surviving node in one zone at once.
	FaultZoneOutage = "zone-outage"
	// FaultHang wedges a node that keeps heartbeating: the stuck-step
	// watchdog detects it (step_deadline_sec), peers blame it, and it is
	// expelled — a recovery with the watchdog's detection window instead of
	// the heartbeat one.
	FaultHang = "hang"
	// FaultCorrupt poisons a node's output — flipped wire bits or non-finite
	// gradients. Integrity checks (frame CRCs, decode validation, the
	// numeric-health guard) catch it inside the same collective, peers blame
	// the sender directly, and it is expelled: a recovery whose detection
	// window is just the membership barrier, with no heartbeat or watchdog
	// wait.
	FaultCorrupt = "corrupt"
	// EventJoin admits a (currently dead) node back into the fleet at the
	// next step boundary — a budget-free reshape, not a recovery.
	EventJoin = "join"
	// EventDrain retires a node gracefully at the next step boundary — a
	// budget-free reshape, unless a failure lands the same step, in which
	// case the drain folds into that recovery for free.
	EventDrain = "drain"
)

// ScriptedFault is one exactly-placed failure or membership event.
type ScriptedFault struct {
	// Step is the 1-based training step the event lands on.
	Step int `json:"step"`
	// Kind is FaultCrash, FaultTransient, FaultZoneOutage, FaultHang,
	// FaultCorrupt, EventJoin or EventDrain.
	Kind string `json:"kind"`
	// Node is the target node ID for node-scoped kinds (everything but
	// zone-outage).
	Node int `json:"node,omitempty"`
	// Zone is the target zone for zone-outage faults.
	Zone string `json:"zone,omitempty"`
}

// FaultSpec declares the failure distributions of a scenario. All rates are
// expressed per 1000 steps so realistic values stay readable (0.02 = one
// expected event per node per 50k steps).
type FaultSpec struct {
	// CrashPer1kSteps is each node's crash hazard per 1000 steps.
	CrashPer1kSteps float64 `json:"crash_per_node_per_1k_steps,omitempty"`
	// TransientPer1kSteps is each node's transient-link-fault hazard per
	// 1000 steps.
	TransientPer1kSteps float64 `json:"transient_per_node_per_1k_steps,omitempty"`
	// HangPer1kSteps is each node's stuck-step hazard per 1000 steps: the
	// node keeps heartbeating but stops making progress, and only the
	// watchdog (recovery.step_deadline_sec) catches it.
	HangPer1kSteps float64 `json:"hang_per_node_per_1k_steps,omitempty"`
	// CorruptPer1kSteps is each node's silent-corruption hazard per 1000
	// steps: the node emits poisoned data (flipped bits, NaN gradients) that
	// the integrity checks catch in-collective, so it is blamed and expelled
	// with only the membership barrier as the detection window.
	CorruptPer1kSteps float64 `json:"corrupt_per_node_per_1k_steps,omitempty"`
	// ZoneOutagePer1kSteps is the fleet-wide hazard of losing one whole
	// zone per 1000 steps (the zone is drawn uniformly from zones that
	// still have survivors).
	ZoneOutagePer1kSteps float64 `json:"zone_outage_per_1k_steps,omitempty"`
	// CascadeFactor multiplies every hazard for CascadeWindow steps after a
	// failure event (>= 1; 0 disables cascading).
	CascadeFactor float64 `json:"cascade_factor,omitempty"`
	// CascadeWindow is the cascade's reach in steps (default 10 when
	// CascadeFactor is set).
	CascadeWindow int `json:"cascade_window_steps,omitempty"`
	// Scripted places exact faults at exact steps, independent of the
	// random streams.
	Scripted []ScriptedFault `json:"scripted,omitempty"`
}

func (f *FaultSpec) validate(fleet *FleetSpec, steps int) error {
	if f.CrashPer1kSteps < 0 || f.TransientPer1kSteps < 0 || f.ZoneOutagePer1kSteps < 0 || f.HangPer1kSteps < 0 || f.CorruptPer1kSteps < 0 {
		return fmt.Errorf("sim: fault rates must be >= 0")
	}
	if f.CascadeFactor < 0 || (f.CascadeFactor > 0 && f.CascadeFactor < 1) {
		return fmt.Errorf("sim: cascade factor must be >= 1 (or 0 to disable), got %v", f.CascadeFactor)
	}
	if f.CascadeWindow < 0 {
		return fmt.Errorf("sim: cascade window must be >= 0, got %d", f.CascadeWindow)
	}
	for i, s := range f.Scripted {
		if s.Step < 1 || s.Step > steps {
			return fmt.Errorf("sim: scripted fault %d at step %d outside [1, %d]", i, s.Step, steps)
		}
		switch s.Kind {
		case FaultCrash, FaultTransient, FaultHang, FaultCorrupt, EventJoin, EventDrain:
			if s.Node < 0 || s.Node >= fleet.Nodes {
				return fmt.Errorf("sim: scripted fault %d targets node %d outside the %d-node fleet", i, s.Node, fleet.Nodes)
			}
		case FaultZoneOutage:
			if s.Zone == "" {
				return fmt.Errorf("sim: scripted zone outage %d names no zone", i)
			}
			if len(fleet.Zones) == 0 {
				if s.Zone != "default" {
					return fmt.Errorf("sim: scripted zone outage %d targets %q but the fleet has only the implicit default zone", i, s.Zone)
				}
			} else if _, ok := fleet.Zones[s.Zone]; !ok {
				return fmt.Errorf("sim: scripted zone outage %d targets undeclared zone %q", i, s.Zone)
			}
		default:
			return fmt.Errorf("sim: scripted fault %d has unknown kind %q", i, s.Kind)
		}
	}
	return nil
}

// faultEvent is one materialized failure.
type faultEvent struct {
	Kind string
	Node int    // crash/transient target
	Zone string // zone-outage target
}

// faultSampler draws each step's failures. All randomness comes from one
// seeded stream consumed in a fixed order (scripted faults first, then
// per-node crash draws in ID order, then per-node transient draws, then
// per-node hang draws, then per-node corrupt draws, then the zone-outage
// draw), so a seed fully determines the failure history. A zero rate
// consumes no draws, which keeps the random streams of scenarios predating
// the hang and corrupt hazards byte-identical.
type faultSampler struct {
	spec         *FaultSpec
	rng          *rand.Rand
	scripted     map[int][]ScriptedFault
	lastFailStep int // most recent step with any failure; 0 = none yet
}

func newFaultSampler(spec *FaultSpec, seed int64) *faultSampler {
	s := &faultSampler{
		spec:         spec,
		rng:          rand.New(rand.NewSource(seed)),
		scripted:     make(map[int][]ScriptedFault),
		lastFailStep: -1 << 30,
	}
	for _, f := range spec.Scripted {
		s.scripted[f.Step] = append(s.scripted[f.Step], f)
	}
	return s
}

// cascadeMul returns the hazard multiplier for the given step.
func (s *faultSampler) cascadeMul(step int) float64 {
	if s.spec.CascadeFactor <= 1 {
		return 1
	}
	window := s.spec.CascadeWindow
	if window == 0 {
		window = 10
	}
	if step-s.lastFailStep <= window {
		return s.spec.CascadeFactor
	}
	return 1
}

// sample returns the failures landing on the given step. alive reports
// whether each node is still in the fleet; aliveZones lists zones with at
// least one survivor in sorted order.
func (s *faultSampler) sample(step int, fleet []Node, alive []bool, aliveZones []string) []faultEvent {
	var events []faultEvent
	for _, f := range s.scripted[step] {
		switch f.Kind {
		case FaultCrash, FaultTransient, FaultHang, FaultCorrupt, EventDrain:
			if alive[f.Node] {
				events = append(events, faultEvent{Kind: f.Kind, Node: f.Node})
			}
		case EventJoin:
			// A join revives a departed node; joining a live one is a no-op.
			if !alive[f.Node] {
				events = append(events, faultEvent{Kind: EventJoin, Node: f.Node})
			}
		case FaultZoneOutage:
			events = append(events, faultEvent{Kind: FaultZoneOutage, Zone: f.Zone})
		}
	}

	mul := s.cascadeMul(step)
	pCrash := s.spec.CrashPer1kSteps / 1000 * mul
	pTransient := s.spec.TransientPer1kSteps / 1000 * mul
	pHang := s.spec.HangPer1kSteps / 1000 * mul
	pCorrupt := s.spec.CorruptPer1kSteps / 1000 * mul
	// Per-node draws happen in node-ID order for every alive node. Each
	// node consumes a fixed number of draws per step regardless of outcome
	// only when a rate is active; rates are scenario constants, so the
	// stream layout is stable for a given spec.
	if pCrash > 0 {
		for _, n := range fleet {
			if alive[n.ID] && s.rng.Float64() < pCrash {
				events = append(events, faultEvent{Kind: FaultCrash, Node: n.ID})
			}
		}
	}
	if pTransient > 0 {
		for _, n := range fleet {
			if alive[n.ID] && s.rng.Float64() < pTransient {
				events = append(events, faultEvent{Kind: FaultTransient, Node: n.ID})
			}
		}
	}
	if pHang > 0 {
		for _, n := range fleet {
			if alive[n.ID] && s.rng.Float64() < pHang {
				events = append(events, faultEvent{Kind: FaultHang, Node: n.ID})
			}
		}
	}
	if pCorrupt > 0 {
		for _, n := range fleet {
			if alive[n.ID] && s.rng.Float64() < pCorrupt {
				events = append(events, faultEvent{Kind: FaultCorrupt, Node: n.ID})
			}
		}
	}
	if p := s.spec.ZoneOutagePer1kSteps / 1000 * mul; p > 0 && len(aliveZones) > 0 {
		if s.rng.Float64() < p {
			zone := aliveZones[s.rng.Intn(len(aliveZones))]
			events = append(events, faultEvent{Kind: FaultZoneOutage, Zone: zone})
		}
	}

	for _, ev := range events {
		// Only failures prime the cascade window — a planned join or drain
		// does not make the fleet more fragile.
		if ev.Kind != EventJoin && ev.Kind != EventDrain {
			s.lastFailStep = step
			break
		}
	}
	return events
}
