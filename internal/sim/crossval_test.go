package sim

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"acpsgd/internal/comm"
	"acpsgd/internal/compress"
	"acpsgd/internal/data"
	"acpsgd/internal/nn"
	"acpsgd/internal/train"
)

// TestScenarioCrossValidatesElasticRuntime lines the scenario engine up
// against the real elastic runtime on the facts both sides can state
// exactly: how many recoveries a given failure history costs and how many
// workers survive it. A 4-rank train.Cluster suffers a transient link fault
// on rank 1 (flaky transport, first epoch only — the rank keeps
// heartbeating, so the group re-forms at full size) and then a crash of
// rank 2 (KillRank — the group shrinks to 3). The simulated scenario
// scripts the same two events and must agree on the recovery count, the
// survivor count, and the crash/transient classification.
func TestScenarioCrossValidatesElasticRuntime(t *testing.T) {
	const (
		workers      = 4
		flakyRank    = 1
		crashRank    = 2
		stepsBetween = 4 // successful steps between the two injected failures
	)

	// --- real side: an elastic cluster with the scripted failure history.
	cfg := train.Config{
		Spec:           compress.MustSpec("ssgd"),
		Workers:        workers,
		BatchPerWorker: 16,
		Epochs:         1,
		Momentum:       0.9,
		Schedule:       train.Schedule{BaseLR: 0.05},
		Overlap:        train.OverlapOn,
		Seed:           7,
		Elastic: train.ElasticConfig{
			Enabled:          true,
			CheckpointEvery:  2,
			MaxRecoveries:    4,
			Backoff:          5 * time.Millisecond,
			HeartbeatTimeout: 200 * time.Millisecond,
		},
	}
	var builds int32
	cfg.NewTransports = func(p int) ([]comm.Transport, error) {
		ts, err := comm.NewInprocGroup(p, 0)
		if err != nil {
			return nil, err
		}
		// Epoch 1 only: rank 1's transport fails every operation, so the
		// very first step hits a transient link fault while the rank keeps
		// heartbeating. Re-formed epochs get clean transports.
		if atomic.AddInt32(&builds, 1) == 1 {
			ts[flakyRank] = comm.WithFlaky(ts[flakyRank], 1, 42)
		}
		return ts, nil
	}
	build := func(rng *rand.Rand) *nn.Model {
		return nn.NewModel(
			nn.NewDense("fc1", 16, 16, rng),
			nn.NewReLU("act"),
			nn.NewDense("head", 16, 4, rng),
		)
	}
	trainSet := data.GaussianMixture(1001, 256, 16, 4, 1.0)
	c, err := train.NewCluster(cfg, build, trainSet)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetLR(0.05)

	// Step 1 rides through the transient recovery inside the call.
	for i := 0; i < 1+stepsBetween; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatalf("step %d: %v", i+1, err)
		}
	}
	if got := c.Size(); got != workers {
		t.Fatalf("transient fault changed the group size: %d, want %d", got, workers)
	}
	if got := c.Recoveries(); got != 1 {
		t.Fatalf("after the transient: %d recoveries, want 1", got)
	}

	c.KillRank(crashRank)
	// The next step rides through the crash recovery.
	for i := 0; i < 2; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatalf("post-kill step %d: %v", i+1, err)
		}
	}

	realRecoveries := c.Recoveries()
	realSurvivors := c.Size()
	if realRecoveries != 2 {
		t.Fatalf("real run: %d recoveries, want 2 (one transient, one crash)", realRecoveries)
	}
	if realSurvivors != workers-1 {
		t.Fatalf("real run: %d survivors, want %d", realSurvivors, workers-1)
	}

	// --- simulated side: the same failure history as a scripted scenario.
	// The transient lands on step 1 (the flaky transport fails the first
	// collective); the crash lands after the in-between steps.
	crashStep := 1 + stepsBetween + 1
	sc := &Scenario{
		Name:   "crossval",
		Seed:   42,
		Steps:  crashStep + 2,
		Model:  "resnet50",
		Method: "ssgd",
		Fleet: FleetSpec{
			Nodes:     workers,
			Templates: []NodeTemplate{{Name: "gpu", Weight: 1}},
		},
		Faults: FaultSpec{Scripted: []ScriptedFault{
			{Step: 1, Kind: FaultTransient, Node: flakyRank},
			{Step: crashStep, Kind: FaultCrash, Node: crashRank},
		}},
		Recovery: RecoverySpec{CheckpointEverySteps: 2},
	}
	rep, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Recoveries != realRecoveries {
		t.Fatalf("recovery count disagrees: sim %d vs real %d", rep.Recoveries, realRecoveries)
	}
	if rep.FinalSurvivors != realSurvivors {
		t.Fatalf("survivor count disagrees: sim %d vs real %d", rep.FinalSurvivors, realSurvivors)
	}
	if rep.Transients != 1 || rep.Crashes != 1 {
		t.Fatalf("sim misclassified the failure history: %+v", rep)
	}
	if rep.Dead {
		t.Fatalf("sim cluster died where the real one survived: %+v", rep)
	}
	if rep.RecoverySec <= 0 {
		t.Fatalf("sim priced the recoveries at zero: %+v", rep)
	}
}
