package sim

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"acpsgd/internal/comm"
	"acpsgd/internal/compress"
	"acpsgd/internal/data"
	"acpsgd/internal/nn"
	"acpsgd/internal/train"
)

// TestScenarioCrossValidatesElasticRuntime lines the scenario engine up
// against the real elastic runtime on the facts both sides can state
// exactly: how many recoveries a given failure history costs and how many
// workers survive it. A 4-rank train.Cluster suffers a transient link fault
// on rank 1 (flaky transport, first epoch only — the rank keeps
// heartbeating, so the group re-forms at full size) and then a crash of
// rank 2 (KillRank — the group shrinks to 3). The simulated scenario
// scripts the same two events and must agree on the recovery count, the
// survivor count, and the crash/transient classification.
func TestScenarioCrossValidatesElasticRuntime(t *testing.T) {
	const (
		workers      = 4
		flakyRank    = 1
		crashRank    = 2
		stepsBetween = 4 // successful steps between the two injected failures
	)

	// --- real side: an elastic cluster with the scripted failure history.
	cfg := train.Config{
		Spec:           compress.MustSpec("ssgd"),
		Workers:        workers,
		BatchPerWorker: 16,
		Epochs:         1,
		Momentum:       0.9,
		Schedule:       train.Schedule{BaseLR: 0.05},
		Overlap:        train.OverlapOn,
		Seed:           7,
		Elastic: train.ElasticConfig{
			Enabled:          true,
			CheckpointEvery:  2,
			MaxRecoveries:    4,
			Backoff:          5 * time.Millisecond,
			HeartbeatTimeout: 200 * time.Millisecond,
		},
	}
	var builds int32
	cfg.NewTransports = func(p int) ([]comm.Transport, error) {
		ts, err := comm.NewInprocGroup(p, 0)
		if err != nil {
			return nil, err
		}
		// Epoch 1 only: rank 1's transport fails every operation, so the
		// very first step hits a transient link fault while the rank keeps
		// heartbeating. Re-formed epochs get clean transports.
		if atomic.AddInt32(&builds, 1) == 1 {
			ts[flakyRank] = comm.WithFlaky(ts[flakyRank], 1, 42)
		}
		return ts, nil
	}
	build := func(rng *rand.Rand) *nn.Model {
		return nn.NewModel(
			nn.NewDense("fc1", 16, 16, rng),
			nn.NewReLU("act"),
			nn.NewDense("head", 16, 4, rng),
		)
	}
	trainSet := data.GaussianMixture(1001, 256, 16, 4, 1.0)
	c, err := train.NewCluster(cfg, build, trainSet)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetLR(0.05)

	// Step 1 rides through the transient recovery inside the call.
	for i := 0; i < 1+stepsBetween; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatalf("step %d: %v", i+1, err)
		}
	}
	if got := c.Size(); got != workers {
		t.Fatalf("transient fault changed the group size: %d, want %d", got, workers)
	}
	if got := c.Recoveries(); got != 1 {
		t.Fatalf("after the transient: %d recoveries, want 1", got)
	}

	c.KillRank(crashRank)
	// The next step rides through the crash recovery.
	for i := 0; i < 2; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatalf("post-kill step %d: %v", i+1, err)
		}
	}

	realRecoveries := c.Recoveries()
	realSurvivors := c.Size()
	if realRecoveries != 2 {
		t.Fatalf("real run: %d recoveries, want 2 (one transient, one crash)", realRecoveries)
	}
	if realSurvivors != workers-1 {
		t.Fatalf("real run: %d survivors, want %d", realSurvivors, workers-1)
	}

	// --- simulated side: the same failure history as a scripted scenario.
	// The transient lands on step 1 (the flaky transport fails the first
	// collective); the crash lands after the in-between steps.
	crashStep := 1 + stepsBetween + 1
	sc := &Scenario{
		Name:   "crossval",
		Seed:   42,
		Steps:  crashStep + 2,
		Model:  "resnet50",
		Method: "ssgd",
		Fleet: FleetSpec{
			Nodes:     workers,
			Templates: []NodeTemplate{{Name: "gpu", Weight: 1}},
		},
		Faults: FaultSpec{Scripted: []ScriptedFault{
			{Step: 1, Kind: FaultTransient, Node: flakyRank},
			{Step: crashStep, Kind: FaultCrash, Node: crashRank},
		}},
		Recovery: RecoverySpec{CheckpointEverySteps: 2},
	}
	rep, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Recoveries != realRecoveries {
		t.Fatalf("recovery count disagrees: sim %d vs real %d", rep.Recoveries, realRecoveries)
	}
	if rep.FinalSurvivors != realSurvivors {
		t.Fatalf("survivor count disagrees: sim %d vs real %d", rep.FinalSurvivors, realSurvivors)
	}
	if rep.Transients != 1 || rep.Crashes != 1 {
		t.Fatalf("sim misclassified the failure history: %+v", rep)
	}
	if rep.Dead {
		t.Fatalf("sim cluster died where the real one survived: %+v", rep)
	}
	if rep.RecoverySec <= 0 {
		t.Fatalf("sim priced the recoveries at zero: %+v", rep)
	}
}

// TestScenarioCrossValidatesCorruptionExpulsion lines the corruption fault
// model up against the real numeric-health guard. A 4-rank elastic cluster
// runs with CheckNumerics on; after two clean steps rank 1 starts emitting
// NaN gradients (PoisonRank), its local scan self-reports, the cluster
// blames and expels it, and training rides through one recovery to 3
// survivors. The scripted scenario injects one corrupt fault at the same
// step and must agree on the recovery count, the survivor count, and the
// corruption classification.
func TestScenarioCrossValidatesCorruptionExpulsion(t *testing.T) {
	const (
		workers      = 4
		poisonedRank = 1
		cleanSteps   = 2
	)

	// --- real side: a numeric-guarded elastic cluster with one rank poisoned.
	cfg := train.Config{
		Spec:           compress.MustSpec("ssgd"),
		Workers:        workers,
		BatchPerWorker: 16,
		Epochs:         1,
		Momentum:       0.9,
		Schedule:       train.Schedule{BaseLR: 0.05},
		Overlap:        train.OverlapOn,
		Seed:           7,
		CheckNumerics:  true,
		Elastic: train.ElasticConfig{
			Enabled:          true,
			CheckpointEvery:  2,
			MaxRecoveries:    4,
			Backoff:          5 * time.Millisecond,
			HeartbeatTimeout: 200 * time.Millisecond,
		},
	}
	build := func(rng *rand.Rand) *nn.Model {
		return nn.NewModel(
			nn.NewDense("fc1", 16, 16, rng),
			nn.NewReLU("act"),
			nn.NewDense("head", 16, 4, rng),
		)
	}
	trainSet := data.GaussianMixture(1001, 256, 16, 4, 1.0)
	c, err := train.NewCluster(cfg, build, trainSet)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetLR(0.05)

	for i := 0; i < cleanSteps; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatalf("clean step %d: %v", i+1, err)
		}
	}
	c.PoisonRank(poisonedRank)
	// The next step hits the numeric guard and rides through the expulsion
	// recovery inside the call.
	for i := 0; i < 2; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatalf("post-poison step %d: %v", i+1, err)
		}
	}

	realRecoveries, realSurvivors := c.Recoveries(), c.Size()
	if realRecoveries != 1 {
		t.Fatalf("real run: %d recoveries, want 1 (the poisoned-rank expulsion)", realRecoveries)
	}
	if realSurvivors != workers-1 {
		t.Fatalf("real run: %d survivors, want %d", realSurvivors, workers-1)
	}

	// --- simulated side: the same history as one scripted corrupt fault.
	sc := &Scenario{
		Name:   "crossval-corrupt",
		Seed:   42,
		Steps:  cleanSteps + 3,
		Model:  "resnet50",
		Method: "ssgd",
		Fleet: FleetSpec{
			Nodes:     workers,
			Templates: []NodeTemplate{{Name: "gpu", Weight: 1}},
		},
		Faults: FaultSpec{Scripted: []ScriptedFault{
			{Step: cleanSteps + 1, Kind: FaultCorrupt, Node: poisonedRank},
		}},
		Recovery: RecoverySpec{CheckpointEverySteps: 2},
	}
	rep, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Recoveries != realRecoveries {
		t.Fatalf("recovery count disagrees: sim %d vs real %d", rep.Recoveries, realRecoveries)
	}
	if rep.FinalSurvivors != realSurvivors {
		t.Fatalf("survivor count disagrees: sim %d vs real %d", rep.FinalSurvivors, realSurvivors)
	}
	if rep.Corruptions != 1 || rep.Crashes != 0 || rep.Hangs != 0 {
		t.Fatalf("sim misclassified the failure history: %+v", rep)
	}
	if rep.Dead {
		t.Fatalf("sim cluster died where the real one survived: %+v", rep)
	}
	if rep.RecoverySec <= 0 {
		t.Fatalf("sim priced the expulsion at zero: %+v", rep)
	}
}

// TestScenarioCrossValidatesReshapeAndWatchdog extends the cross-validation
// to the full production recovery loop: a crash, an expelled member
// rejoining under its old ID (scale-up through the pending-join path), a
// graceful drain, and finally a hung-but-heartbeating rank caught by the
// stuck-step watchdog. The real elastic cluster and the scripted scenario
// must agree on the facts both can state exactly: two recoveries (crash +
// hang), two budget-free reshapes (join + drain), two final survivors, and
// the event classification.
func TestScenarioCrossValidatesReshapeAndWatchdog(t *testing.T) {
	const (
		workers  = 4
		idle     = 150 * time.Millisecond // per-op deadline on the wedged epoch
		backstop = 2 * time.Second        // group-level watchdog (generous: per-op blame should win)
	)

	// --- real side.
	cfg := train.Config{
		Spec:           compress.MustSpec("ssgd"),
		Workers:        workers,
		BatchPerWorker: 16,
		Epochs:         1,
		Momentum:       0.9,
		Schedule:       train.Schedule{BaseLR: 0.05},
		Overlap:        train.OverlapOn,
		Seed:           7,
		Elastic: train.ElasticConfig{
			Enabled:          true,
			CheckpointEvery:  2,
			MaxRecoveries:    4,
			Backoff:          5 * time.Millisecond,
			HeartbeatTimeout: 200 * time.Millisecond,
			StepDeadline:     backstop,
		},
	}
	var builds int32
	cfg.NewTransports = func(p int) ([]comm.Transport, error) {
		ts, err := comm.NewInprocGroup(p, 0)
		if err != nil {
			return nil, err
		}
		// Build 4 is the post-drain epoch (initial, post-crash, post-join,
		// post-drain): its rank 1 wedges silently while peers carry per-op
		// deadlines, so only their blame identifies it.
		if atomic.AddInt32(&builds, 1) == 4 {
			for i := range ts {
				ts[i] = comm.WithDeadline(ts[i], idle)
			}
			ts[1] = comm.WithStall(ts[1], 0)
		}
		return ts, nil
	}
	build := func(rng *rand.Rand) *nn.Model {
		return nn.NewModel(
			nn.NewDense("fc1", 16, 16, rng),
			nn.NewReLU("act"),
			nn.NewDense("head", 16, 4, rng),
		)
	}
	trainSet := data.GaussianMixture(1001, 256, 16, 4, 1.0)
	c, err := train.NewCluster(cfg, build, trainSet)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetLR(0.05)

	step := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := c.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}

	step(2)
	c.KillRank(3) // crash: next step rides through recovery to 3 ranks
	step(2)
	if c.Size() != 3 || c.Recoveries() != 1 {
		t.Fatalf("after crash: size=%d recoveries=%d", c.Size(), c.Recoveries())
	}
	// The expelled member's ID rejoins through the pending-join path — the
	// coordinator must not hold the old incarnation against it.
	if err := c.Join("w3"); err != nil {
		t.Fatalf("expelled ID could not rejoin: %v", err)
	}
	step(2) // first step re-forms at 4
	if c.Size() != 4 || c.Reshapes() != 1 {
		t.Fatalf("after rejoin: size=%d reshapes=%d", c.Size(), c.Reshapes())
	}
	if err := c.DrainRank(1); err != nil {
		t.Fatal(err)
	}
	// The next step drains w1 at the boundary (build 4)... whose rank 1
	// immediately wedges. The watchdog blames and expels it, and the same
	// Step call rides through that recovery too.
	step(2)

	realRecoveries, realReshapes, realSurvivors := c.Recoveries(), c.Reshapes(), c.Size()
	if realRecoveries != 2 {
		t.Fatalf("real run: %d recoveries, want 2 (crash + hang)", realRecoveries)
	}
	if realReshapes != 2 {
		t.Fatalf("real run: %d reshapes, want 2 (join + drain)", realReshapes)
	}
	if realSurvivors != 2 {
		t.Fatalf("real run: %d survivors, want 2", realSurvivors)
	}

	// --- simulated side: the same history, scripted. Node i stands in for
	// member "wi"; the hang targets node 2 because after the drain of node 1
	// the wedged rank 1 of the 3-rank group {w0, w2, w3} is w2.
	sc := &Scenario{
		Name:   "crossval-reshape",
		Seed:   42,
		Steps:  18,
		Model:  "resnet50",
		Method: "ssgd",
		Fleet: FleetSpec{
			Nodes:     workers,
			Templates: []NodeTemplate{{Name: "gpu", Weight: 1}},
		},
		Faults: FaultSpec{Scripted: []ScriptedFault{
			{Step: 2, Kind: FaultCrash, Node: 3},
			{Step: 6, Kind: EventJoin, Node: 3},
			{Step: 10, Kind: EventDrain, Node: 1},
			{Step: 14, Kind: FaultHang, Node: 2},
		}},
		Recovery: RecoverySpec{CheckpointEverySteps: 2, StepDeadlineSec: 2},
	}
	rep, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Recoveries != realRecoveries {
		t.Fatalf("recovery count disagrees: sim %d vs real %d", rep.Recoveries, realRecoveries)
	}
	if rep.Reshapes != realReshapes {
		t.Fatalf("reshape count disagrees: sim %d vs real %d", rep.Reshapes, realReshapes)
	}
	if rep.FinalSurvivors != realSurvivors {
		t.Fatalf("survivor count disagrees: sim %d vs real %d", rep.FinalSurvivors, realSurvivors)
	}
	if rep.Crashes != 1 || rep.Joins != 1 || rep.Drains != 1 || rep.Hangs != 1 {
		t.Fatalf("sim misclassified the event history: %+v", rep)
	}
	if rep.Dead {
		t.Fatalf("sim cluster died where the real one survived: %+v", rep)
	}
	if rep.RecoverySec <= 0 || rep.ReshapeSec <= 0 {
		t.Fatalf("sim priced recoveries or reshapes at zero: %+v", rep)
	}
}
