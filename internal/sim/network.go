// Package sim is a discrete-event performance simulator of the paper's
// testbed: a cluster of GPU workers (8 nodes x 4 RTX 2080 Ti in the paper)
// running one training iteration of data-parallel SGD with a given gradient
// aggregation method and system-optimization mode.
//
// It substitutes for hardware we do not have (see DESIGN.md): communication
// follows the alpha-beta cost model with ring all-reduce / all-gather
// complexities (Table II), computation follows per-layer FLOP shares scaled
// by calibrated per-model FF&BP times, compression costs follow the Table II
// complexity terms plus per-kernel launch overheads, and GPU contention
// between back-propagation and concurrently scheduled compression (the
// §III-C interference that hurts Power-SGD under WFBP) is modeled by
// processor sharing between two in-order compute streams.
package sim

// Network is an alpha-beta interconnect model. Alpha is the per-hop
// (per-ring-step) latency; Bandwidth the per-link bandwidth in bytes/s.
type Network struct {
	Name      string
	Alpha     float64 // seconds per ring hop
	Bandwidth float64 // bytes per second
	// AllGatherEff derates all-gather bandwidth relative to the alpha-beta
	// optimum; measured all-gather implementations fall well short of ring
	// all-reduce efficiency (§III-B finds Sign-SGD's all-gather costs more
	// than S-SGD's all-reduce despite 32x smaller payloads).
	AllGatherEff float64
}

// Predefined networks matching §V-F: commodity 1GbE, data-center 10GbE
// (the main testbed), and 100Gb InfiniBand. Alphas are calibrated so the
// §II-A micro-benchmark numbers hold (a 64KB all-reduce on 32 workers takes
// ~1.2ms on 10GbE).
func Net1GbE() Network {
	return Network{Name: "1GbE", Alpha: 30e-6, Bandwidth: 125e6, AllGatherEff: 0.5}
}

// Net10GbE returns the paper's default 10Gb/s Ethernet.
func Net10GbE() Network {
	return Network{Name: "10GbE", Alpha: 12e-6, Bandwidth: 1.25e9, AllGatherEff: 0.5}
}

// Net100GbIB returns the 100Gb/s InfiniBand configuration. The effective
// per-link bandwidth is far below line rate: with 4 GPUs per node sharing
// one NIC over PCIe 3.0, the achievable ring bandwidth is PCIe/host-bound
// (~32Gb/s), which is what makes S-SGD's communication still visible on
// 100Gb fabrics in Fig. 13.
func Net100GbIB() Network {
	return Network{Name: "100GbIB", Alpha: 2.5e-6, Bandwidth: 4e9, AllGatherEff: 0.5}
}

// NetByName resolves a network by CLI name.
func NetByName(name string) (Network, bool) {
	switch name {
	case "1gbe", "1GbE":
		return Net1GbE(), true
	case "10gbe", "10GbE":
		return Net10GbE(), true
	case "100gbib", "100GbIB", "ib":
		return Net100GbIB(), true
	default:
		return Network{}, false
	}
}

// AllReduceTime returns the ring all-reduce time for `bytes` payload across
// p workers: 2(p-1) hops of alpha plus the bandwidth-optimal 2(p-1)/p
// volume term (Table II).
func (n Network) AllReduceTime(p int, bytes float64) float64 {
	if p <= 1 || bytes < 0 {
		return 0
	}
	hops := float64(2 * (p - 1))
	return hops*n.Alpha + 2*float64(p-1)/float64(p)*bytes/n.Bandwidth
}

// AllGatherTime returns the all-gather time when every worker contributes
// `bytesPerWorker`: (p-1) hops and (p-1)*N volume (Table II), derated by
// AllGatherEff.
func (n Network) AllGatherTime(p int, bytesPerWorker float64) float64 {
	if p <= 1 || bytesPerWorker < 0 {
		return 0
	}
	eff := n.AllGatherEff
	if eff <= 0 {
		eff = 1
	}
	return float64(p-1)*n.Alpha + float64(p-1)*bytesPerWorker/(n.Bandwidth*eff)
}
