package sim

import (
	"math"
	"testing"
)

func TestEngineSerialTasks(t *testing.T) {
	e := newEngine(0.5)
	a := e.add(mainStream, kindFwdBwd, 1.0)
	b := e.add(mainStream, kindCompress, 2.0)
	acct, err := e.run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acct.Total-3.0) > 1e-9 {
		t.Fatalf("total %v want 3", acct.Total)
	}
	if math.Abs(acct.FFBP-1) > 1e-9 || math.Abs(acct.Compress-2) > 1e-9 {
		t.Fatalf("accounting %+v", acct)
	}
	if a.finish > b.finish {
		t.Fatal("in-order stream violated")
	}
}

func TestEngineNetworkOverlapsCompute(t *testing.T) {
	e := newEngine(0.5)
	e.add(mainStream, kindFwdBwd, 2.0)
	e.add(netStream, kindComm, 1.5) // no deps: runs concurrently
	acct, err := e.run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acct.Total-2.0) > 1e-9 {
		t.Fatalf("comm should hide under compute: total %v", acct.Total)
	}
	if acct.CommNonOverlap != 0 {
		t.Fatalf("no comm should be exposed: %v", acct.CommNonOverlap)
	}
}

func TestEngineExposedCommunication(t *testing.T) {
	e := newEngine(0.5)
	c := e.add(mainStream, kindFwdBwd, 1.0)
	e.add(netStream, kindComm, 3.0, c) // starts after compute
	acct, err := e.run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acct.Total-4.0) > 1e-9 {
		t.Fatalf("total %v want 4", acct.Total)
	}
	if math.Abs(acct.CommNonOverlap-3.0) > 1e-9 {
		t.Fatalf("exposed comm %v want 3", acct.CommNonOverlap)
	}
}

func TestEngineDependencyChain(t *testing.T) {
	e := newEngine(0.5)
	a := e.add(mainStream, kindFwdBwd, 1.0)
	c := e.add(netStream, kindComm, 1.0, a)
	d := e.add(sideStream, kindCompress, 1.0, c)
	acct, err := e.run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acct.Total-3.0) > 1e-9 {
		t.Fatalf("chain should serialize: total %v", acct.Total)
	}
	if d.finish < c.finish || c.finish < a.finish {
		t.Fatal("dependency order violated")
	}
}

func TestEngineInterferenceSlowsBothStreams(t *testing.T) {
	// Two equal 1s tasks on main and side with rate 0.5: both progress at
	// half speed while overlapped → both finish at t=2 (equivalent to
	// serial). With rate 0.25 the overlap is a net loss: finish at t=4.
	for _, tc := range []struct {
		rate float64
		want float64
	}{
		{0.5, 2.0},
		{0.25, 4.0},
	} {
		e := newEngine(tc.rate)
		e.add(mainStream, kindFwdBwd, 1.0)
		e.add(sideStream, kindCompress, 1.0)
		acct, err := e.run()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(acct.Total-tc.want) > 1e-9 {
			t.Fatalf("rate %v: total %v want %v", tc.rate, acct.Total, tc.want)
		}
	}
}

func TestEngineInterferenceAsymmetric(t *testing.T) {
	// Side task 1s overlapping a 3s main task at rate 0.5: side finishes at
	// t=2 (main has 1s of work left, done at t=3). Total 3s, no loss in
	// this symmetric-rate case; at rate 0.25 side finishes at 4, main did
	// 1s by then, remaining 2s → total 6.
	e := newEngine(0.25)
	e.add(mainStream, kindFwdBwd, 3.0)
	e.add(sideStream, kindCompress, 1.0)
	acct, err := e.run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acct.Total-6.0) > 1e-9 {
		t.Fatalf("total %v want 6", acct.Total)
	}
	// Accounting splits the overlapped window evenly.
	if math.Abs(acct.FFBP+acct.Compress-acct.Total) > 1e-9 {
		t.Fatalf("GPU accounting must sum to total when no comm: %+v", acct)
	}
}

func TestEngineDeadlockDetected(t *testing.T) {
	e := newEngine(0.5)
	// Head of main depends on a later task in the same stream: deadlock.
	later := &task{id: 999}
	e.add(mainStream, kindFwdBwd, 1.0, later)
	if _, err := e.run(); err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestEngineHeadOfLineBlocking(t *testing.T) {
	// In-order streams: a blocked head stalls the whole stream even if a
	// later task is ready (CUDA stream semantics).
	e := newEngine(0.5)
	slow := e.add(mainStream, kindFwdBwd, 5.0)
	blocked := e.add(netStream, kindComm, 1.0, slow)
	free := e.add(netStream, kindComm, 1.0) // queued behind blocked
	acct, err := e.run()
	if err != nil {
		t.Fatal(err)
	}
	if free.finish < blocked.finish {
		t.Fatal("net stream must run in order")
	}
	if math.Abs(acct.Total-7.0) > 1e-9 {
		t.Fatalf("total %v want 7", acct.Total)
	}
}

func TestEngineZeroDurationTasks(t *testing.T) {
	e := newEngine(0.5)
	a := e.add(mainStream, kindFwdBwd, 0)
	e.add(netStream, kindComm, 0, a)
	acct, err := e.run()
	if err != nil {
		t.Fatal(err)
	}
	if acct.Total != 0 {
		t.Fatalf("total %v want 0", acct.Total)
	}
}

func TestEngineAccountingPartition(t *testing.T) {
	// FFBP + Compress + CommNonOverlap == Total for a mixed graph.
	e := newEngine(0.4)
	f := e.add(mainStream, kindFwdBwd, 1.0)
	c1 := e.add(mainStream, kindCompress, 0.5)
	n1 := e.add(netStream, kindComm, 2.0, c1)
	e.add(sideStream, kindCompress, 0.7, f)
	e.add(mainStream, kindCompress, 0.3, n1)
	acct, err := e.run()
	if err != nil {
		t.Fatal(err)
	}
	sum := acct.FFBP + acct.Compress + acct.CommNonOverlap
	if math.Abs(sum-acct.Total) > 1e-9 {
		t.Fatalf("breakdown (%v) does not sum to total (%v)", sum, acct.Total)
	}
}

func TestEngineBadRateDefaults(t *testing.T) {
	e := newEngine(0)
	if e.rate != 0.35 {
		t.Fatalf("rate %v, want default", e.rate)
	}
	e2 := newEngine(2)
	if e2.rate != 0.35 {
		t.Fatalf("rate %v, want default", e2.rate)
	}
}
