package sim

// GPU holds the calibrated compute-side constants of the simulator. The
// defaults are tuned so the S-SGD, Power-SGD and ACP-SGD baselines land near
// the paper's Table III numbers on the 32-GPU/10GbE configuration; every
// constant is an explicit knob for ablation benches.
type GPU struct {
	// BatchFixedFrac is the fraction of FF&BP time that does not scale with
	// batch size (kernel launch, memory traffic floors). time(b) =
	// ref * (f + (1-f) * b / refBatch). This produces the paper's Fig. 11a
	// behaviour: throughput improves with batch size.
	BatchFixedFrac float64
	// LowRankFLOPS is the effective throughput of the small matrix
	// multiplications in Power-SGD/ACP-SGD compression (well below peak:
	// these are skinny matmuls).
	LowRankFLOPS float64
	// KernelLaunch is the fixed overhead of one compression kernel.
	KernelLaunch float64
	// QRPerTensor is the per-tensor cost of the reduced QR
	// orthogonalization used by Table III's Power-SGD/ACP-SGD (§V-A).
	QRPerTensor float64
	// SlowOrthFactor multiplies the orthogonalization cost when the
	// original Power-SGD Gram-Schmidt orthogonalization is used (the §III
	// baseline); the effective per-tensor cost grows with the rank.
	SlowOrthFactor float64
	// SignThroughput is the element throughput of sign pack/unpack.
	SignThroughput float64
	// TopKThroughput is the element throughput of the multi-sampling top-k
	// selection (the paper's PyTorch implementation is compute-bound,
	// §III-B).
	TopKThroughput float64
	// InterferenceRate is the per-stream execution rate when both compute
	// streams are busy (processor sharing < 0.5 makes overlap a net loss,
	// reproducing the ~13% one-GPU WFBP slowdown of Power-SGD, §III-C).
	InterferenceRate float64
	// MemoryBytes is the GPU memory capacity (11GB on RTX 2080 Ti) used by
	// the OOM check that reproduces Fig. 2's Sign-SGD/BERT-Large OOM.
	MemoryBytes float64
}

// DefaultGPU returns the calibrated RTX 2080 Ti model.
func DefaultGPU() GPU {
	return GPU{
		BatchFixedFrac:   0.3,
		LowRankFLOPS:     3e12,
		KernelLaunch:     20e-6,
		QRPerTensor:      0.15e-3,
		SlowOrthFactor:   0.5, // multiplied by rank when SlowOrth is set
		SignThroughput:   1e9,
		TopKThroughput:   2.2e8,
		InterferenceRate: 0.22,
		MemoryBytes:      11e9,
	}
}

// batchScale returns the FF&BP time multiplier for batch b against the
// model's reference batch.
func (g GPU) batchScale(b, refBatch int) float64 {
	if refBatch <= 0 || b <= 0 {
		return 1
	}
	return g.BatchFixedFrac + (1-g.BatchFixedFrac)*float64(b)/float64(refBatch)
}
