package sim

import (
	"testing"

	"acpsgd/internal/models"
)

// simulate is a test helper with the paper's default cluster (32 workers,
// 10GbE) unless overridden.
func simulate(t *testing.T, mutate func(*Config)) Result {
	t.Helper()
	cfg := Config{
		Model:   models.ResNet50(),
		Method:  MethodSSGD,
		Mode:    ModeWFBPTF,
		Workers: 32,
		Net:     Net10GbE(),
		GPU:     DefaultGPU(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func tableIIICell(t *testing.T, m *models.ModelSpec, method Method, mode Mode) float64 {
	t.Helper()
	return simulate(t, func(c *Config) {
		c.Model = m
		c.Method = method
		c.Mode = mode
	}).TotalSec
}

func TestSimulateValidation(t *testing.T) {
	bad := []Config{
		{},
		{Model: models.ResNet50(), Method: MethodSSGD, Mode: ModeNaive, Workers: 0, Net: Net10GbE()},
		{Model: models.ResNet50(), Method: Method(99), Mode: ModeNaive, Workers: 2, Net: Net10GbE()},
		{Model: models.ResNet50(), Method: MethodSSGD, Mode: Mode(99), Workers: 2, Net: Net10GbE()},
		{Model: models.ResNet50(), Method: MethodSSGD, Mode: ModeNaive, Workers: 2}, // no network
	}
	for i, cfg := range bad {
		if _, err := Simulate(cfg); err == nil {
			t.Fatalf("config %d should fail", i)
		}
	}
}

func TestMethodModeStrings(t *testing.T) {
	for _, m := range []Method{MethodSSGD, MethodSign, MethodTopK, MethodPower, MethodACP} {
		if m.String() == "" {
			t.Fatal("missing method name")
		}
	}
	for _, m := range []Mode{ModeNaive, ModeWFBP, ModeWFBPTF} {
		if m.String() == "" {
			t.Fatal("missing mode name")
		}
	}
	if Method(9).String() != "Method(9)" || Mode(9).String() != "Mode(9)" {
		t.Fatal("unknown enum strings")
	}
}

// --- Table III: iteration-time orderings -------------------------------

func TestTableIIIResNet50Ordering(t *testing.T) {
	m := models.ResNet50()
	ssgd := tableIIICell(t, m, MethodSSGD, ModeWFBPTF)
	power := tableIIICell(t, m, MethodPower, ModeNaive)
	powerStar := tableIIICell(t, m, MethodPower, ModeWFBPTF)
	acp := tableIIICell(t, m, MethodACP, ModeWFBPTF)
	// Paper: ACP (248) < S-SGD (266) < Power* (286) < Power (302).
	if !(acp < ssgd && ssgd < powerStar && powerStar < power) {
		t.Fatalf("ResNet-50 ordering broken: acp=%.0f ssgd=%.0f power*=%.0f power=%.0f",
			acp*1e3, ssgd*1e3, powerStar*1e3, power*1e3)
	}
	// Power-SGD is ~13% slower than S-SGD; allow 3-20%.
	if ratio := power / ssgd; ratio < 1.03 || ratio > 1.25 {
		t.Fatalf("Power/S-SGD ratio %.2f outside paper ballpark (~1.13)", ratio)
	}
}

func TestTableIIIBERTBaseOrdering(t *testing.T) {
	m := models.BERTBase()
	ssgd := tableIIICell(t, m, MethodSSGD, ModeWFBPTF)
	power := tableIIICell(t, m, MethodPower, ModeNaive)
	powerStar := tableIIICell(t, m, MethodPower, ModeWFBPTF)
	acp := tableIIICell(t, m, MethodACP, ModeWFBPTF)
	// Paper: ACP (193) < Power (236) < Power* (292) < S-SGD (805).
	if !(acp < power && power < powerStar && powerStar < ssgd) {
		t.Fatalf("BERT-Base ordering broken: acp=%.0f power=%.0f power*=%.0f ssgd=%.0f",
			acp*1e3, power*1e3, powerStar*1e3, ssgd*1e3)
	}
	// ACP speedup over S-SGD ~4.2x on BERT-Base; allow 2.5-5.5x.
	if sp := ssgd / acp; sp < 2.5 || sp > 5.5 {
		t.Fatalf("BERT-Base ACP speedup %.1fx outside ballpark (~4.2x)", sp)
	}
}

func TestTableIIIBERTLargeOrdering(t *testing.T) {
	m := models.BERTLarge()
	ssgd := tableIIICell(t, m, MethodSSGD, ModeWFBPTF)
	power := tableIIICell(t, m, MethodPower, ModeNaive)
	powerStar := tableIIICell(t, m, MethodPower, ModeWFBPTF)
	acp := tableIIICell(t, m, MethodACP, ModeWFBPTF)
	// Paper: ACP (245) < Power (392) < Power* (516) < S-SGD (2307).
	if !(acp < power && power < powerStar && powerStar < ssgd) {
		t.Fatalf("BERT-Large ordering broken: acp=%.0f power=%.0f power*=%.0f ssgd=%.0f",
			acp*1e3, power*1e3, powerStar*1e3, ssgd*1e3)
	}
	// The paper's headline: ACP up to 9.42x over S-SGD. Require >= 5x.
	if sp := ssgd / acp; sp < 5 {
		t.Fatalf("BERT-Large ACP speedup %.1fx, want >= 5x", sp)
	}
	// ACP vs Power-SGD: paper 1.60x on BERT-Large; require >= 1.2x.
	if sp := power / acp; sp < 1.2 {
		t.Fatalf("BERT-Large ACP vs Power %.2fx, want >= 1.2x", sp)
	}
}

func TestTableIIIACPFastestEverywhere(t *testing.T) {
	for _, m := range models.Benchmarks() {
		acp := tableIIICell(t, m, MethodACP, ModeWFBPTF)
		for _, other := range []struct {
			name   string
			method Method
			mode   Mode
		}{
			{"S-SGD", MethodSSGD, ModeWFBPTF},
			{"Power", MethodPower, ModeNaive},
			{"Power*", MethodPower, ModeWFBPTF},
		} {
			o := tableIIICell(t, m, other.method, other.mode)
			if acp >= o {
				t.Fatalf("%s: ACP (%.0fms) not faster than %s (%.0fms)", m.Name, acp*1e3, other.name, o*1e3)
			}
		}
	}
}

func TestTableIIISSGDAbsoluteTimes(t *testing.T) {
	// The S-SGD baselines anchor the calibration; require within 15% of
	// Table III (266, 500, 805, 2307 ms).
	want := map[string]float64{
		"ResNet-50":  0.266,
		"ResNet-152": 0.500,
		"BERT-Base":  0.805,
		"BERT-Large": 2.307,
	}
	for _, m := range models.Benchmarks() {
		got := tableIIICell(t, m, MethodSSGD, ModeWFBPTF)
		w := want[m.Name]
		if got < 0.85*w || got > 1.15*w {
			t.Fatalf("%s S-SGD %.0fms, paper %.0fms (outside 15%%)", m.Name, got*1e3, w*1e3)
		}
	}
}

// --- Fig 2: gradient compression vs optimized S-SGD ----------------------

func fig2Cell(t *testing.T, m *models.ModelSpec, method Method) Result {
	t.Helper()
	return simulate(t, func(c *Config) {
		c.Model = m
		c.Method = method
		if method == MethodSSGD {
			c.Mode = ModeWFBPTF
		} else {
			c.Mode = ModeNaive
			c.SlowOrth = method == MethodPower
		}
	})
}

func TestFig2SignAndTopKSlowerThanSSGDOnResNet(t *testing.T) {
	for _, m := range []*models.ModelSpec{models.ResNet50(), models.ResNet152()} {
		ssgd := fig2Cell(t, m, MethodSSGD).TotalSec
		sign := fig2Cell(t, m, MethodSign).TotalSec
		topk := fig2Cell(t, m, MethodTopK).TotalSec
		if sign <= ssgd || topk <= ssgd {
			t.Fatalf("%s: compression should lose to S-SGD (ssgd=%.0f sign=%.0f topk=%.0f)",
				m.Name, ssgd*1e3, sign*1e3, topk*1e3)
		}
		// Sign-SGD is ~1.7x slower on ResNet-50.
		if m.Name == "ResNet-50" {
			if r := sign / ssgd; r < 1.3 || r > 2.2 {
				t.Fatalf("Sign/S-SGD ratio %.2f, paper ~1.70", r)
			}
		}
	}
}

func TestFig2PowerBestCompressorAndWinsOnBERT(t *testing.T) {
	for _, m := range models.Benchmarks() {
		power := fig2Cell(t, m, MethodPower)
		sign := fig2Cell(t, m, MethodSign)
		topk := fig2Cell(t, m, MethodTopK)
		if !sign.OOM && power.TotalSec >= sign.TotalSec {
			t.Fatalf("%s: Power should beat Sign", m.Name)
		}
		if power.TotalSec >= topk.TotalSec {
			t.Fatalf("%s: Power should beat Top-k", m.Name)
		}
		ssgd := fig2Cell(t, m, MethodSSGD)
		switch m.Name {
		case "BERT-Base", "BERT-Large":
			if power.TotalSec >= ssgd.TotalSec {
				t.Fatalf("%s: Power should beat S-SGD on large models", m.Name)
			}
		case "ResNet-50":
			// "Worse or closely than S-SGD on small models" (§III-B):
			// strictly worse on ResNet-50...
			if power.TotalSec <= ssgd.TotalSec {
				t.Fatalf("%s: Power should lose to S-SGD", m.Name)
			}
		default:
			// ...and within 15% on ResNet-152 (Table III even has Power
			// ahead there).
			if power.TotalSec > 1.15*ssgd.TotalSec {
				t.Fatalf("%s: Power should be close to S-SGD (%.0f vs %.0f)",
					m.Name, power.TotalSec*1e3, ssgd.TotalSec*1e3)
			}
		}
	}
}

func TestFig2SignOOMOnBERTLarge(t *testing.T) {
	r := fig2Cell(t, models.BERTLarge(), MethodSign)
	if !r.OOM {
		t.Fatalf("Sign-SGD on BERT-Large at 32 workers should OOM (mem=%.1fGB)", r.MemoryBytes/1e9)
	}
	// ...but not on BERT-Base (the paper ran it).
	if fig2Cell(t, models.BERTBase(), MethodSign).OOM {
		t.Fatal("Sign-SGD on BERT-Base should fit")
	}
}

func TestFig2TopKFasterThanSSGDOnBERTLarge(t *testing.T) {
	ssgd := fig2Cell(t, models.BERTLarge(), MethodSSGD).TotalSec
	topk := fig2Cell(t, models.BERTLarge(), MethodTopK).TotalSec
	if topk >= ssgd {
		t.Fatalf("Top-k (%.0fms) should beat S-SGD (%.0fms) on BERT-Large", topk*1e3, ssgd*1e3)
	}
}

// --- Fig 3: breakdown properties ----------------------------------------

func TestFig3BreakdownProperties(t *testing.T) {
	// Sign-SGD's communication exceeds S-SGD's despite 32x compression
	// (all-gather inefficiency), and Top-k's compression dominates its
	// communication (§III-B).
	ssgd := fig2Cell(t, models.BERTBase(), MethodSSGD)
	sign := fig2Cell(t, models.BERTBase(), MethodSign)
	topk := fig2Cell(t, models.BERTBase(), MethodTopK)
	if sign.CommSec <= ssgd.CommSec {
		t.Fatalf("Sign comm (%.0fms) should exceed S-SGD comm (%.0fms)", sign.CommSec*1e3, ssgd.CommSec*1e3)
	}
	if topk.CompressSec <= topk.CommSec {
		t.Fatalf("Top-k should be compression-bound: comp=%.0f comm=%.0f", topk.CompressSec*1e3, topk.CommSec*1e3)
	}
	if topk.CompressSec <= sign.CompressSec {
		t.Fatal("Top-k compression should cost more than Sign's")
	}
	// Breakdown sums to total.
	for _, r := range []Result{ssgd, sign, topk} {
		sum := r.FFBPSec + r.CompressSec + r.CommSec
		if diff := sum - r.TotalSec; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("breakdown does not sum: %+v", r)
		}
	}
}

// --- Fig 9: benefits of system optimizations -----------------------------

func TestFig9SSGDAndACPImproveWithOptimizations(t *testing.T) {
	for _, m := range []*models.ModelSpec{models.ResNet152(), models.BERTLarge()} {
		for _, method := range []Method{MethodSSGD, MethodACP} {
			naive := tableIIICell(t, m, method, ModeNaive)
			wfbp := tableIIICell(t, m, method, ModeWFBP)
			tf := tableIIICell(t, m, method, ModeWFBPTF)
			if wfbp >= naive {
				t.Fatalf("%s %v: WFBP (%.0fms) should beat naive (%.0fms)", m.Name, method, wfbp*1e3, naive*1e3)
			}
			if tf > wfbp {
				t.Fatalf("%s %v: WFBP+TF (%.0fms) should not lose to WFBP (%.0fms)", m.Name, method, tf*1e3, wfbp*1e3)
			}
		}
	}
}

func TestFig9WFBPHurtsPowerSGD(t *testing.T) {
	// The §III-C result: overlapping Power-SGD's compression with BP causes
	// compute interference, so WFBP alone makes Power-SGD slower.
	for _, m := range []*models.ModelSpec{models.ResNet152(), models.BERTLarge()} {
		naive := tableIIICell(t, m, MethodPower, ModeNaive)
		wfbp := tableIIICell(t, m, MethodPower, ModeWFBP)
		if wfbp <= naive {
			t.Fatalf("%s: Power-SGD WFBP (%.0fms) should be slower than naive (%.0fms)", m.Name, wfbp*1e3, naive*1e3)
		}
		tf := tableIIICell(t, m, MethodPower, ModeWFBPTF)
		if tf >= wfbp {
			t.Fatalf("%s: TF should rescue Power-SGD from WFBP (%.0f vs %.0f)", m.Name, tf*1e3, wfbp*1e3)
		}
	}
}

func TestFig9ACPGainsOverNaive(t *testing.T) {
	// §V-D: ACP-SGD with WFBP+TF achieves up to 2.14x over its naive
	// implementation (BERT-Large).
	naive := tableIIICell(t, models.BERTLarge(), MethodACP, ModeNaive)
	tf := tableIIICell(t, models.BERTLarge(), MethodACP, ModeWFBPTF)
	if sp := naive / tf; sp < 1.5 || sp > 2.8 {
		t.Fatalf("ACP optimization speedup %.2fx, paper up to 2.14x", sp)
	}
}

// --- Fig 10: buffer-size sweep -------------------------------------------

func TestFig10ACPRobustToBufferSize(t *testing.T) {
	m := models.BERTLarge()
	run := func(rank, bufBytes int, noFusion bool) float64 {
		return simulate(t, func(c *Config) {
			c.Model = m
			c.Method = MethodACP
			c.Rank = rank
			c.BufferBytes = bufBytes
			c.NoFusion = noFusion
		}).TotalSec
	}
	for _, rank := range []int{32, 256} {
		def := run(rank, 0, false) // 25MB default
		zero := run(rank, 0, true)
		huge := run(rank, 1500*1024*1024, false)
		if def > zero || def > huge {
			t.Fatalf("rank %d: default buffer (%.0fms) should beat extremes (0MB %.0fms, 1500MB %.0fms)",
				rank, def*1e3, zero*1e3, huge*1e3)
		}
	}
	// Rank 256 extremes are markedly worse (paper: ~50% improvement at
	// 25MB over both).
	def := run(256, 0, false)
	zero := run(256, 0, true)
	huge := run(256, 1500*1024*1024, false)
	if zero/def < 1.2 || huge/def < 1.2 {
		t.Fatalf("rank 256: 25MB should clearly win (def=%.0f zero=%.0f huge=%.0f)", def*1e3, zero*1e3, huge*1e3)
	}
}

func TestFig10ACPBeatsPowerAcrossBufferSizes(t *testing.T) {
	m := models.BERTLarge()
	for _, rank := range []int{32, 256} {
		for _, buf := range []int{1024 * 1024, 25 * 1024 * 1024, 500 * 1024 * 1024} {
			acp := simulate(t, func(c *Config) {
				c.Model = m
				c.Method = MethodACP
				c.Rank = rank
				c.BufferBytes = buf
			}).TotalSec
			power := simulate(t, func(c *Config) {
				c.Model = m
				c.Method = MethodPower
				c.Rank = rank
				c.BufferBytes = buf
			}).TotalSec
			if acp >= power {
				t.Fatalf("rank %d buf %dMB: ACP (%.0fms) should beat Power* (%.0fms)",
					rank, buf/1024/1024, acp*1e3, power*1e3)
			}
		}
	}
}

// --- Fig 11: batch size and rank sweeps -----------------------------------

func TestFig11aBatchSizeTrends(t *testing.T) {
	m := models.ResNet152()
	speedup := func(batch int) float64 {
		ssgd := simulate(t, func(c *Config) { c.Model = m; c.Batch = batch }).TotalSec
		acp := simulate(t, func(c *Config) { c.Model = m; c.Method = MethodACP; c.Batch = batch }).TotalSec
		if acp >= ssgd {
			t.Fatalf("batch %d: ACP should beat S-SGD", batch)
		}
		return ssgd / acp
	}
	s16 := speedup(16)
	s32 := speedup(32)
	// Paper: 2.4x at batch 16 shrinking to 1.6x at batch 32.
	if s16 <= s32 {
		t.Fatalf("ACP speedup should shrink with batch size: %.2fx @16 vs %.2fx @32", s16, s32)
	}
	// Throughput (samples/s) improves with batch for S-SGD.
	t16 := simulate(t, func(c *Config) { c.Model = m; c.Batch = 16 }).TotalSec
	t32 := simulate(t, func(c *Config) { c.Model = m; c.Batch = 32 }).TotalSec
	if 16/t16 >= 32/t32 {
		t.Fatal("larger batches should improve S-SGD throughput")
	}
}

func TestFig11bRankTrends(t *testing.T) {
	m := models.BERTLarge()
	cell := func(method Method, rank int) Result {
		return simulate(t, func(c *Config) {
			c.Model = m
			c.Method = method
			c.Rank = rank
			if method == MethodPower {
				c.Mode = ModeWFBPTF
			}
		})
	}
	prevACP, prevPower := 0.0, 0.0
	for _, rank := range []int{32, 64, 128, 256} {
		acp := cell(MethodACP, rank)
		power := cell(MethodPower, rank)
		if acp.TotalSec <= prevACP || power.TotalSec <= prevPower {
			t.Fatalf("rank %d: times should grow with rank", rank)
		}
		prevACP, prevPower = acp.TotalSec, power.TotalSec
		if acp.TotalSec >= power.TotalSec {
			t.Fatalf("rank %d: ACP should beat Power*", rank)
		}
	}
	// The ACP advantage grows with rank (paper: 1.9x @32 → 2.7x @256).
	adv32 := cell(MethodPower, 32).TotalSec / cell(MethodACP, 32).TotalSec
	adv256 := cell(MethodPower, 256).TotalSec / cell(MethodACP, 256).TotalSec
	if adv256 <= adv32 {
		t.Fatalf("ACP advantage should grow with rank: %.2fx @32 vs %.2fx @256", adv32, adv256)
	}
	// Rank 256 (5.4x compression) still beats S-SGD clearly (paper ~3.9x).
	ssgd := simulate(t, func(c *Config) { c.Model = m }).TotalSec
	if sp := ssgd / cell(MethodACP, 256).TotalSec; sp < 2 {
		t.Fatalf("ACP rank-256 speedup over S-SGD %.2fx, want >= 2x", sp)
	}
}

// --- Fig 12: worker scaling ------------------------------------------------

func TestFig12ScalingNearlyFlat(t *testing.T) {
	for _, m := range []*models.ModelSpec{models.ResNet50(), models.BERTBase()} {
		for _, method := range []Method{MethodSSGD, MethodACP} {
			t8 := simulate(t, func(c *Config) { c.Model = m; c.Method = method; c.Workers = 8 }).TotalSec
			t64 := simulate(t, func(c *Config) { c.Model = m; c.Method = method; c.Workers = 64 }).TotalSec
			if t64 < t8 {
				t.Fatalf("%s %v: more workers cannot be faster per iteration", m.Name, method)
			}
			// Ring all-reduce keeps growth modest: <= 35% from 8 to 64
			// (paper: 8-24%).
			if t64/t8 > 1.35 {
				t.Fatalf("%s %v: scaling degradation %.2fx too steep", m.Name, method, t64/t8)
			}
		}
	}
}

func TestFig12ACPScalesBestOnBERT(t *testing.T) {
	m := models.BERTBase()
	for _, workers := range []int{8, 16, 32, 64} {
		acp := simulate(t, func(c *Config) { c.Model = m; c.Method = MethodACP; c.Workers = workers }).TotalSec
		ssgd := simulate(t, func(c *Config) { c.Model = m; c.Workers = workers }).TotalSec
		if acp >= ssgd {
			t.Fatalf("%d workers: ACP should beat S-SGD on BERT-Base", workers)
		}
	}
}

// --- Fig 13: bandwidth sweep ------------------------------------------------

func TestFig13CompressionWinsGrowAsBandwidthShrinks(t *testing.T) {
	for _, m := range []*models.ModelSpec{models.ResNet50(), models.BERTBase()} {
		var prev float64 = 1e18
		for _, net := range []Network{Net1GbE(), Net10GbE(), Net100GbIB()} {
			ssgd := simulate(t, func(c *Config) { c.Model = m; c.Net = net }).TotalSec
			acp := simulate(t, func(c *Config) { c.Model = m; c.Method = MethodACP; c.Net = net }).TotalSec
			sp := ssgd / acp
			if sp > prev+1e-9 {
				t.Fatalf("%s: ACP speedup should shrink with faster networks (%.2f after %.2f on %s)",
					m.Name, sp, prev, net.Name)
			}
			prev = sp
		}
	}
}

func TestFig13BERTBase1GbESpeedupLarge(t *testing.T) {
	// Paper: ACP 23.9x over S-SGD on 1GbE BERT-Base. Require >= 8x.
	m := models.BERTBase()
	ssgd := simulate(t, func(c *Config) { c.Model = m; c.Net = Net1GbE() }).TotalSec
	acp := simulate(t, func(c *Config) { c.Model = m; c.Method = MethodACP; c.Net = Net1GbE() }).TotalSec
	if sp := ssgd / acp; sp < 8 {
		t.Fatalf("1GbE BERT-Base ACP speedup %.1fx, want >= 8x", sp)
	}
}

func TestFig13ACPStillWinsOn100Gb(t *testing.T) {
	// Paper: ~40% improvement over S-SGD on 100Gb IB for BERT-Base.
	m := models.BERTBase()
	ssgd := simulate(t, func(c *Config) { c.Model = m; c.Net = Net100GbIB() }).TotalSec
	acp := simulate(t, func(c *Config) { c.Model = m; c.Method = MethodACP; c.Net = Net100GbIB() }).TotalSec
	if sp := ssgd / acp; sp < 1.05 || sp > 2.5 {
		t.Fatalf("100GbIB BERT-Base ACP speedup %.2fx, paper ~1.4x", sp)
	}
}

// --- misc properties -------------------------------------------------------

func TestCompressionRatioReported(t *testing.T) {
	r := simulate(t, func(c *Config) { c.Method = MethodACP })
	// ACP's per-step ratio is ~2x Power's Table I 67x for ResNet-50 r=4.
	if r.CompressionRat < 60 || r.CompressionRat > 250 {
		t.Fatalf("ACP ResNet-50 compression ratio %.0fx implausible", r.CompressionRat)
	}
	rp := simulate(t, func(c *Config) { c.Method = MethodPower; c.Mode = ModeNaive })
	if rp.CompressionRat < 50 || rp.CompressionRat > 90 {
		t.Fatalf("Power ResNet-50 ratio %.0fx, Table I says 67x", rp.CompressionRat)
	}
}

func TestSingleWorkerHasNoComm(t *testing.T) {
	r := simulate(t, func(c *Config) { c.Workers = 1; c.Net = Network{} })
	if r.CommSec != 0 {
		t.Fatalf("single worker should have no communication: %v", r.CommSec)
	}
}

func TestOneGPUWFBPSlowdownForPower(t *testing.T) {
	// §III-C: on one GPU (no communication), Power-SGD with WFBP is ~13%
	// slower than without, due to compute interference.
	naive := simulate(t, func(c *Config) {
		c.Workers = 1
		c.Net = Network{}
		c.Method = MethodPower
		c.Mode = ModeNaive
	}).TotalSec
	wfbp := simulate(t, func(c *Config) {
		c.Workers = 1
		c.Net = Network{}
		c.Method = MethodPower
		c.Mode = ModeWFBPTF
	}).TotalSec
	slowdown := wfbp / naive
	if slowdown < 1.02 || slowdown > 1.40 {
		t.Fatalf("1-GPU WFBP slowdown %.2fx, paper ~1.13x", slowdown)
	}
}

func TestDisableEFReducesCompressCost(t *testing.T) {
	withEF := simulate(t, func(c *Config) { c.Method = MethodACP; c.Model = models.BERTLarge() })
	without := simulate(t, func(c *Config) { c.Method = MethodACP; c.Model = models.BERTLarge(); c.DisableEF = true })
	if without.CompressSec >= withEF.CompressSec {
		t.Fatalf("disabling EF should cut compression cost: %.1fms vs %.1fms",
			without.CompressSec*1e3, withEF.CompressSec*1e3)
	}
}

func TestPayloadBytesOrdering(t *testing.T) {
	ssgd := simulate(t, nil)
	acp := simulate(t, func(c *Config) { c.Method = MethodACP })
	sign := simulate(t, func(c *Config) { c.Method = MethodSign; c.Mode = ModeNaive })
	topk := simulate(t, func(c *Config) { c.Method = MethodTopK; c.Mode = ModeNaive })
	if !(topk.PayloadBytes < acp.PayloadBytes && acp.PayloadBytes < sign.PayloadBytes && sign.PayloadBytes < ssgd.PayloadBytes) {
		t.Fatalf("payload ordering broken: topk=%.0f acp=%.0f sign=%.0f ssgd=%.0f",
			topk.PayloadBytes, acp.PayloadBytes, sign.PayloadBytes, ssgd.PayloadBytes)
	}
}
