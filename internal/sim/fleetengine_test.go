package sim

import (
	"bytes"
	"testing"
)

// chaosScenario is a small randomized-fault scenario for engine tests.
func chaosScenario() *Scenario {
	return &Scenario{
		Name:   "engine-test",
		Seed:   5,
		Steps:  200,
		Model:  "resnet50",
		Method: "acp",
		Fleet: FleetSpec{
			Nodes: 16,
			Templates: []NodeTemplate{
				{Name: "fast", Weight: 3},
				{Name: "slow", Weight: 1, ComputeScale: 1.5},
			},
			Zones: map[string]float64{"a": 1, "b": 1},
		},
		Faults: FaultSpec{
			CrashPer1kSteps:     2,
			TransientPer1kSteps: 4,
			CascadeFactor:       2,
		},
		Recovery: RecoverySpec{MinNodes: 2},
	}
}

// scriptedScenario builds a 4-node scenario with the given scripted faults.
func scriptedScenario(faults ...ScriptedFault) *Scenario {
	return &Scenario{
		Name:   "scripted-test",
		Seed:   1,
		Steps:  10,
		Model:  "resnet50",
		Method: "ssgd",
		Fleet: FleetSpec{
			Nodes:     4,
			Templates: []NodeTemplate{{Name: "gpu", Weight: 1}},
			Zones:     map[string]float64{"east": 3, "west": 1},
		},
		Faults: FaultSpec{Scripted: faults},
	}
}

func mustRun(t *testing.T, sc *Scenario) *FleetReport {
	t.Helper()
	rep, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRunScenarioByteDeterministic(t *testing.T) {
	sc := chaosScenario()
	a, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatalf("identical runs produced different report bytes:\n%s\nvs\n%s", ab, bb)
	}
	c, err := RunScenarioSeed(sc, 6)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ab, cb) {
		t.Fatal("different seeds produced identical chaos reports")
	}
	if c.Seed != 6 {
		t.Fatalf("report seed %d, want the override 6", c.Seed)
	}
}

func TestRunScenarioFleetIndependentOfFaultSpec(t *testing.T) {
	// The fleet and fault streams are split sub-seeds: cranking fault rates
	// must not reshuffle the generated hardware.
	quiet := chaosScenario()
	quiet.Faults = FaultSpec{}
	loud := chaosScenario()
	loud.Faults.CrashPer1kSteps = 50
	a := mustRun(t, quiet)
	b := mustRun(t, loud)
	for name, n := range a.Templates {
		if b.Templates[name] != n {
			t.Fatalf("template %q count changed with fault rates: %d vs %d", name, n, b.Templates[name])
		}
	}
	for name, n := range a.Zones {
		if b.Zones[name] != n {
			t.Fatalf("zone %q count changed with fault rates: %d vs %d", name, n, b.Zones[name])
		}
	}
}

func TestRunScenarioScriptedCrashShrinks(t *testing.T) {
	rep := mustRun(t, scriptedScenario(ScriptedFault{Step: 3, Kind: FaultCrash, Node: 2}))
	if rep.Crashes != 1 || rep.Transients != 0 {
		t.Fatalf("want exactly 1 crash: %+v", rep)
	}
	if rep.Recoveries != 1 || rep.RecoverySec <= 0 {
		t.Fatalf("crash must cost one priced recovery: %+v", rep)
	}
	if rep.FinalSurvivors != 3 {
		t.Fatalf("4-node fleet minus one crash should end at 3, got %d", rep.FinalSurvivors)
	}
	if rep.Steps != 10 || rep.Dead {
		t.Fatalf("run should complete all steps: %+v", rep)
	}
}

func TestRunScenarioTransientKeepsSize(t *testing.T) {
	rep := mustRun(t, scriptedScenario(ScriptedFault{Step: 3, Kind: FaultTransient, Node: 2}))
	if rep.Transients != 1 || rep.Crashes != 0 {
		t.Fatalf("want exactly 1 transient: %+v", rep)
	}
	if rep.Recoveries != 1 || rep.RecoverySec <= 0 {
		t.Fatalf("a transient re-form still costs a recovery: %+v", rep)
	}
	if rep.FinalSurvivors != 4 {
		t.Fatalf("transient faults must not shrink the fleet, got %d survivors", rep.FinalSurvivors)
	}
}

func TestRunScenarioTransientCheaperThanCrash(t *testing.T) {
	// A transient re-forms at full size and replays nothing extra beyond the
	// interval; a crash additionally loses a member. Both pay a recovery, but
	// the crash's shrink makes later steps slower or equal — total time with
	// the crash must be >= the transient run.
	crash := mustRun(t, scriptedScenario(ScriptedFault{Step: 3, Kind: FaultCrash, Node: 2}))
	transient := mustRun(t, scriptedScenario(ScriptedFault{Step: 3, Kind: FaultTransient, Node: 2}))
	if crash.FinalSurvivors >= transient.FinalSurvivors {
		t.Fatalf("crash should end smaller: %d vs %d", crash.FinalSurvivors, transient.FinalSurvivors)
	}
}

func TestRunScenarioZoneOutage(t *testing.T) {
	rep := mustRun(t, scriptedScenario(ScriptedFault{Step: 5, Kind: FaultZoneOutage, Zone: "west"}))
	if rep.ZoneOutages != 1 {
		t.Fatalf("want 1 zone outage: %+v", rep)
	}
	west := rep.Zones["west"]
	if west < 1 {
		t.Skip("seed placed no nodes in west; scenario too small")
	}
	if rep.FinalSurvivors != 4-west {
		t.Fatalf("outage should remove all %d west nodes, survivors %d", west, rep.FinalSurvivors)
	}
	if rep.Crashes != west {
		t.Fatalf("zone outage should count its %d node losses as crashes, got %d", west, rep.Crashes)
	}
	if rep.Recoveries != 1 {
		t.Fatalf("one outage event is one mass recovery, got %d", rep.Recoveries)
	}
}

func TestRunScenarioMinNodesDeath(t *testing.T) {
	sc := scriptedScenario(
		ScriptedFault{Step: 2, Kind: FaultCrash, Node: 0},
		ScriptedFault{Step: 4, Kind: FaultCrash, Node: 1},
	)
	sc.Recovery.MinNodes = 3
	rep := mustRun(t, sc)
	if !rep.Dead {
		t.Fatalf("dropping to 2 survivors under min_nodes=3 must kill the run: %+v", rep)
	}
	if rep.Steps >= sc.Steps {
		t.Fatalf("dead run should stop early, completed %d/%d", rep.Steps, sc.Steps)
	}
	if rep.FinalSurvivors != 2 {
		t.Fatalf("want 2 survivors at death, got %d", rep.FinalSurvivors)
	}
}

func TestRunScenarioDeadFaultOnDeadNodeIgnored(t *testing.T) {
	rep := mustRun(t, scriptedScenario(
		ScriptedFault{Step: 2, Kind: FaultCrash, Node: 1},
		ScriptedFault{Step: 5, Kind: FaultCrash, Node: 1}, // already dead
	))
	if rep.Crashes != 1 || rep.Recoveries != 1 {
		t.Fatalf("re-crashing a dead node must be a no-op: %+v", rep)
	}
}

func TestRunScenarioStragglersSetTheRing(t *testing.T) {
	// A fleet with one 1GbE straggler template must be slower per step than
	// the same fleet all on 10GbE: the bottleneck node paces everyone.
	uniform := chaosScenario()
	uniform.Faults = FaultSpec{}
	uniform.Fleet.Templates = []NodeTemplate{{Name: "fast", Weight: 1}}
	mixed := chaosScenario()
	mixed.Faults = FaultSpec{}
	mixed.Fleet.Templates = []NodeTemplate{
		{Name: "fast", Weight: 3},
		{Name: "slow-nic", Weight: 1, Network: "1gbe"},
	}
	u := mustRun(t, uniform)
	m := mustRun(t, mixed)
	if m.StepMeanSec <= u.StepMeanSec {
		t.Fatalf("1GbE stragglers should slow the ring: mixed %.4fs vs uniform %.4fs", m.StepMeanSec, u.StepMeanSec)
	}
}

func TestRunScenarioReportAccounting(t *testing.T) {
	rep := mustRun(t, chaosScenario())
	if rep.Steps != 200 {
		t.Fatalf("want all 200 steps, got %d", rep.Steps)
	}
	if rep.StepP50Sec <= 0 || rep.StepP99Sec < rep.StepP50Sec || rep.StepMaxSec < rep.StepP99Sec || rep.StepMinSec > rep.StepP50Sec {
		t.Fatalf("step distribution inconsistent: %+v", rep)
	}
	if rep.WireSec < rep.ExposedCommSec {
		t.Fatalf("wire time cannot be below exposed comm: %v < %v", rep.WireSec, rep.ExposedCommSec)
	}
	if rep.WireBytes <= 0 || rep.FFBPSec <= 0 {
		t.Fatalf("missing volume/compute accounting: %+v", rep)
	}
	if rep.TotalSec != rep.TrainSec+rep.RecoverySec {
		t.Fatalf("total must be train+recovery: %+v", rep)
	}
	if rep.StepsPerSec <= 0 {
		t.Fatalf("throughput missing: %+v", rep)
	}
	// The recovery count can never exceed failed steps, and every recovery
	// must have been priced.
	if rep.Recoveries > 0 && rep.RecoverySec <= 0 && !rep.Dead {
		t.Fatalf("recoveries without recovery time: %+v", rep)
	}
}

func TestRunScenarioValidatesFirst(t *testing.T) {
	sc := chaosScenario()
	sc.Model = "gpt5"
	if _, err := RunScenario(sc); err == nil {
		t.Fatal("invalid scenario must not run")
	}
}

func TestRunScenarioOOMBottleneck(t *testing.T) {
	// BERT-Large S-SGD does not fit an 11GB card even before compression;
	// the engine must surface the OOM as an error rather than price garbage.
	sc := chaosScenario()
	sc.Model = "bert-large"
	sc.Method = "sign"
	sc.Faults = FaultSpec{}
	if _, err := RunScenario(sc); err == nil {
		t.Fatal("OOM fleet must fail loudly")
	}
}

// TestRunScenarioJoinGrows: a scripted join revives a departed node as one
// budget-free reshape — no recovery, no replay charge.
func TestRunScenarioJoinGrows(t *testing.T) {
	rep := mustRun(t, scriptedScenario(
		ScriptedFault{Step: 2, Kind: FaultCrash, Node: 1},
		ScriptedFault{Step: 6, Kind: EventJoin, Node: 1},
	))
	if rep.FinalSurvivors != 4 {
		t.Fatalf("join did not restore the fleet: %d survivors", rep.FinalSurvivors)
	}
	if rep.Joins != 1 || rep.Reshapes != 1 || rep.Recoveries != 1 {
		t.Fatalf("accounting: joins=%d reshapes=%d recoveries=%d, want 1/1/1", rep.Joins, rep.Reshapes, rep.Recoveries)
	}
	if rep.ReshapeSec <= 0 {
		t.Fatal("the join reshape was priced at zero")
	}
	// Joining a live node is a no-op.
	rep2 := mustRun(t, scriptedScenario(ScriptedFault{Step: 3, Kind: EventJoin, Node: 0}))
	if rep2.Joins != 0 || rep2.Reshapes != 0 {
		t.Fatalf("join of a live node should be ignored: %+v", rep2)
	}
}

// TestRunScenarioDrainIsBudgetFree: a drain shrinks the fleet without a
// recovery, and is cheaper than the equivalent crash.
func TestRunScenarioDrainIsBudgetFree(t *testing.T) {
	drain := mustRun(t, scriptedScenario(ScriptedFault{Step: 5, Kind: EventDrain, Node: 2}))
	if drain.FinalSurvivors != 3 || drain.Drains != 1 || drain.Reshapes != 1 {
		t.Fatalf("drain accounting: %+v", drain)
	}
	if drain.Recoveries != 0 || drain.RecoverySec != 0 {
		t.Fatalf("drain consumed recovery budget: %+v", drain)
	}
	crash := mustRun(t, scriptedScenario(ScriptedFault{Step: 5, Kind: FaultCrash, Node: 2}))
	if drain.ReshapeSec >= crash.RecoverySec {
		t.Fatalf("graceful drain (%gs) should be cheaper than a crash (%gs)", drain.ReshapeSec, crash.RecoverySec)
	}
}

// TestRunScenarioDrainFoldsIntoRecovery: a drain landing the same step as a
// crash folds into that recovery — one recovery, no separate reshape.
func TestRunScenarioDrainFoldsIntoRecovery(t *testing.T) {
	rep := mustRun(t, scriptedScenario(
		ScriptedFault{Step: 5, Kind: EventDrain, Node: 2},
		ScriptedFault{Step: 5, Kind: FaultCrash, Node: 1},
	))
	if rep.FinalSurvivors != 2 {
		t.Fatalf("expected 2 survivors, got %d", rep.FinalSurvivors)
	}
	if rep.Recoveries != 1 || rep.Reshapes != 0 || rep.ReshapeSec != 0 {
		t.Fatalf("drain should fold into the same-step recovery: %+v", rep)
	}
	if rep.Drains != 1 || rep.Crashes != 1 {
		t.Fatalf("event classification: %+v", rep)
	}
}

// TestRunScenarioHangDetection: a hang is a recovery whose detection window
// is the watchdog deadline; with a tight deadline it beats the crash path,
// and with none it falls back to it.
func TestRunScenarioHangDetection(t *testing.T) {
	base := scriptedScenario(ScriptedFault{Step: 5, Kind: FaultHang, Node: 2})
	base.Recovery.StepDeadlineSec = 0.05
	hang := mustRun(t, base)
	if hang.Hangs != 1 || hang.Recoveries != 1 || hang.FinalSurvivors != 3 {
		t.Fatalf("hang accounting: %+v", hang)
	}
	crash := mustRun(t, scriptedScenario(ScriptedFault{Step: 5, Kind: FaultCrash, Node: 2}))
	if hang.RecoverySec >= crash.RecoverySec {
		t.Fatalf("watchdog hang recovery (%gs) should beat heartbeat crash detection (%gs)", hang.RecoverySec, crash.RecoverySec)
	}

	noWatchdog := scriptedScenario(ScriptedFault{Step: 5, Kind: FaultHang, Node: 2})
	fallback := mustRun(t, noWatchdog)
	if fallback.RecoverySec != crash.RecoverySec {
		t.Fatalf("watchdog-free hang (%gs) should price like a crash (%gs)", fallback.RecoverySec, crash.RecoverySec)
	}
}

// TestRunScenarioHangHazard: the random hang hazard draws events and prices
// them as recoveries, and a zero rate leaves pre-hang scenarios' random
// streams untouched.
func TestRunScenarioHangHazard(t *testing.T) {
	sc := chaosScenario()
	sc.Faults.HangPer1kSteps = 30
	sc.Recovery.StepDeadlineSec = 0.5
	rep := mustRun(t, sc)
	if rep.Hangs == 0 {
		t.Fatalf("a 30/1k hang hazard over %d steps x 16 nodes drew nothing", sc.Steps)
	}
	if rep.Recoveries == 0 {
		t.Fatal("hangs were not priced as recoveries")
	}

	// Stream compatibility: rate 0 must reproduce the exact pre-hang report.
	a, err := mustRun(t, chaosScenario()).Encode()
	if err != nil {
		t.Fatal(err)
	}
	zero := chaosScenario()
	zero.Faults.HangPer1kSteps = 0
	b, err := mustRun(t, zero).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("a zero hang rate perturbed the existing random fault streams")
	}
}
