// Benchmark harness: one benchmark per paper table/figure (regenerating the
// experiment via internal/exp) plus micro-benchmarks of the real substrate
// components (collectives, compressors, layers) and the ablation benches
// listed in DESIGN.md §7. Run with:
//
//	go test -bench=. -benchmem
package acpsgd_test

import (
	"math/rand"
	"sync"
	"testing"

	"acpsgd/internal/comm"
	"acpsgd/internal/compress"
	"acpsgd/internal/exp"
	"acpsgd/internal/models"
	"acpsgd/internal/nn"
	"acpsgd/internal/sim"
	"acpsgd/internal/tensor"
)

// benchExp runs one registered experiment per iteration.
func benchExp(b *testing.B, id string) {
	b.Helper()
	opts := exp.ConvOptions{Epochs: 2, Workers: 2}
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(id, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per paper table / figure -----------------------------

func BenchmarkTableI(b *testing.B)  { benchExp(b, "table1") }
func BenchmarkTableII(b *testing.B) { benchExp(b, "table2") }
func BenchmarkFig2(b *testing.B)    { benchExp(b, "fig2") }
func BenchmarkFig3(b *testing.B)    { benchExp(b, "fig3") }
func BenchmarkFig5(b *testing.B)    { benchExp(b, "fig5") }

// BenchmarkFig6 and BenchmarkFig7 run the real convergence experiments at a
// reduced scale (2 epochs, 2 workers) so the full harness stays fast; use
// cmd/acpbench -exp fig6 -epochs 16 for the full-shape run.
func BenchmarkFig6(b *testing.B)        { benchExp(b, "fig6") }
func BenchmarkFig7(b *testing.B)        { benchExp(b, "fig7") }
func BenchmarkTableIII(b *testing.B)    { benchExp(b, "table3") }
func BenchmarkFig8(b *testing.B)        { benchExp(b, "fig8") }
func BenchmarkFig9(b *testing.B)        { benchExp(b, "fig9") }
func BenchmarkFig10(b *testing.B)       { benchExp(b, "fig10") }
func BenchmarkFig11a(b *testing.B)      { benchExp(b, "fig11a") }
func BenchmarkFig11b(b *testing.B)      { benchExp(b, "fig11b") }
func BenchmarkFig12(b *testing.B)       { benchExp(b, "fig12") }
func BenchmarkFig13(b *testing.B)       { benchExp(b, "fig13") }
func BenchmarkMicroFusion(b *testing.B) { benchExp(b, "micro") }

// --- real-substrate micro-benchmarks -------------------------------------

func benchAllReduce(b *testing.B, workers, elems int) {
	b.Helper()
	transports, err := comm.NewInprocGroup(workers, 0)
	if err != nil {
		b.Fatal(err)
	}
	comms := make([]*comm.Communicator, workers)
	bufs := make([][]float64, workers)
	for r := range comms {
		comms[r] = comm.NewCommunicator(transports[r])
		bufs[r] = make([]float64, elems)
	}
	b.SetBytes(int64(8 * elems))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < workers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				if err := comms[r].AllReduceSum(bufs[r]); err != nil {
					b.Error(err)
				}
			}(r)
		}
		wg.Wait()
	}
}

func BenchmarkRingAllReduce4x64k(b *testing.B) { benchAllReduce(b, 4, 64*1024) }
func BenchmarkRingAllReduce8x64k(b *testing.B) { benchAllReduce(b, 8, 64*1024) }
func BenchmarkRingAllReduce4x1M(b *testing.B)  { benchAllReduce(b, 4, 1024*1024) }

func BenchmarkAllGather4x64KB(b *testing.B) {
	const workers = 4
	transports, err := comm.NewInprocGroup(workers, 0)
	if err != nil {
		b.Fatal(err)
	}
	comms := make([]*comm.Communicator, workers)
	blobs := make([][]byte, workers)
	for r := range comms {
		comms[r] = comm.NewCommunicator(transports[r])
		blobs[r] = make([]byte, 64*1024)
	}
	b.SetBytes(64 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < workers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				if _, err := comms[r].AllGather(blobs[r]); err != nil {
					b.Error(err)
				}
			}(r)
		}
		wg.Wait()
	}
}

func randGrad(n int) []float64 {
	rng := rand.New(rand.NewSource(7))
	g := make([]float64, n)
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	return g
}

func BenchmarkSignEncode1M(b *testing.B) {
	const n = 1 << 20
	s := compress.NewSign(n, true)
	grad := randGrad(n)
	b.SetBytes(n * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Encode(i, grad)
	}
}

func BenchmarkSignDecode1M(b *testing.B) {
	const n = 1 << 20
	const workers = 8
	blobs := make([][]byte, workers)
	for r := range blobs {
		s := compress.NewSign(n, false)
		blobs[r] = s.Encode(0, randGrad(n))
	}
	dec := compress.NewSign(n, false)
	out := make([]float64, n)
	b.SetBytes(n * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dec.Decode(i, blobs, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopKExact1M(b *testing.B) {
	const n = 1 << 20
	tk := compress.NewTopK(n, n/1000, compress.SelectExact, true, 1)
	grad := randGrad(n)
	b.SetBytes(n * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Encode(i, grad)
	}
}

func BenchmarkTopKSampled1M(b *testing.B) {
	const n = 1 << 20
	tk := compress.NewTopK(n, n/1000, compress.SelectSampled, true, 2)
	grad := randGrad(n)
	b.SetBytes(n * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Encode(i, grad)
	}
}

// localCollectives satisfies compress.Collectives for single-worker
// benchmarking (no peers: all-reduce is identity).
type localCollectives struct{}

func (localCollectives) AllReduceSum([]float64) error         { return nil }
func (localCollectives) AllGather(b []byte) ([][]byte, error) { return [][]byte{b}, nil }
func (localCollectives) Size() int                            { return 1 }

func BenchmarkPowerCompress512x512r4(b *testing.B) {
	const n, m, r = 512, 512, 4
	ps := compress.NewPowerSGD(n, m, r, true, 1)
	grad := randGrad(n * m)
	b.SetBytes(n * m * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ps.CompressStep(i, grad, localCollectives{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkACPCompress512x512r4(b *testing.B) {
	const n, m, r = 512, 512, 4
	a := compress.NewACP(n, m, r, true, true, 1)
	grad := randGrad(n * m)
	b.SetBytes(n * m * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload := a.Compress(i, grad)
		a.Finalize(i, payload, 1, grad)
	}
}

func BenchmarkOrthogonalize512x32(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := tensor.New(512, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m.Randomize(rng, 1)
		b.StartTimer()
		tensor.Orthogonalize(m)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.New(256, 256)
	y := tensor.New(256, 256)
	x.Randomize(rng, 1)
	y.Randomize(rng, 1)
	out := tensor.New(256, 256)
	b.SetBytes(256 * 256 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(out, x, y)
	}
}

func BenchmarkMiniVGGStep(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	model := models.MiniVGG(rng, 3, 8, 8, 10)
	loss := &nn.SoftmaxCrossEntropy{}
	x := tensor.New(32, 3*8*8)
	x.Randomize(rng, 1)
	labels := make([]int, 32)
	for i := range labels {
		labels[i] = i % 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.ZeroGrads()
		_, d := loss.Forward(model.Forward(x), labels)
		model.Backward(d, nil)
	}
}

func BenchmarkSimulateIteration(b *testing.B) {
	cfg := sim.Config{
		Model:   models.BERTLarge(),
		Method:  sim.MethodACP,
		Mode:    sim.ModeWFBPTF,
		Workers: 32,
		Net:     sim.Net10GbE(),
		GPU:     sim.DefaultGPU(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches (DESIGN.md §7) --------------------------------------

// BenchmarkAblationInterference sweeps the GPU interference rate and
// reports the resulting Power-SGD* time on BERT-Large: the knob behind the
// paper's §III-C WFBP slowdown.
func BenchmarkAblationInterference(b *testing.B) {
	for _, rate := range []float64{0.5, 0.35, 0.22, 0.15} {
		gpu := sim.DefaultGPU()
		gpu.InterferenceRate = rate
		cfg := sim.Config{
			Model: models.BERTLarge(), Method: sim.MethodPower, Mode: sim.ModeWFBPTF,
			Workers: 32, Net: sim.Net10GbE(), GPU: gpu,
		}
		var total float64
		b.Run(sprintRate(rate), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := sim.Simulate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				total = r.TotalSec
			}
			b.ReportMetric(total*1e3, "iter-ms")
		})
	}
}

// BenchmarkAblationAlpha sweeps the per-hop latency and reports the ACP
// no-fusion time on BERT-Large: startup-cost sensitivity, the reason tensor
// fusion matters (§IV-B).
func BenchmarkAblationAlpha(b *testing.B) {
	for _, alpha := range []float64{2e-6, 12e-6, 50e-6} {
		net := sim.Net10GbE()
		net.Alpha = alpha
		cfg := sim.Config{
			Model: models.BERTLarge(), Method: sim.MethodACP, Mode: sim.ModeWFBPTF,
			Workers: 32, Net: net, GPU: sim.DefaultGPU(), NoFusion: true,
		}
		var total float64
		b.Run(sprintRate(alpha*1e6), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := sim.Simulate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				total = r.TotalSec
			}
			b.ReportMetric(total*1e3, "iter-ms")
		})
	}
}

// BenchmarkAblationEF compares ACP-SGD compression throughput with and
// without error feedback on the real compressor.
func BenchmarkAblationEF(b *testing.B) {
	for _, useEF := range []bool{true, false} {
		name := "ef"
		if !useEF {
			name = "no-ef"
		}
		b.Run(name, func(b *testing.B) {
			const n, m, r = 256, 256, 4
			a := compress.NewACP(n, m, r, useEF, true, 1)
			grad := randGrad(n * m)
			b.SetBytes(n * m * 8)
			for i := 0; i < b.N; i++ {
				payload := a.Compress(i, grad)
				a.Finalize(i, payload, 1, grad)
			}
		})
	}
}

// BenchmarkAblationSelection compares exact and multi-sampling top-k
// selection cost (footnote 2's motivation).
func BenchmarkAblationSelection(b *testing.B) {
	const n = 1 << 18
	grad := randGrad(n)
	for _, sel := range []struct {
		name string
		s    compress.Selection
	}{
		{"exact", compress.SelectExact},
		{"sampled", compress.SelectSampled},
	} {
		b.Run(sel.name, func(b *testing.B) {
			tk := compress.NewTopK(n, n/1000, sel.s, false, 1)
			b.SetBytes(n * 8)
			for i := 0; i < b.N; i++ {
				tk.Encode(i, grad)
			}
		})
	}
}

func sprintRate(x float64) string {
	switch {
	case x >= 1:
		return "x" + itoa(int(x))
	default:
		return "r" + itoa(int(x*100))
	}
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	return string(buf[i:])
}
