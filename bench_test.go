// Benchmark harness: one benchmark per paper table/figure (regenerating the
// experiment via internal/exp) plus micro-benchmarks of the real substrate
// components (collectives, compressors, layers) and the ablation benches
// listed in DESIGN.md §7. Run with:
//
//	go test -bench=. -benchmem
//
// Every micro-benchmark delegates to the named suite in internal/bench, the
// same cases `acpbench -baseline` records into BENCH_<date>.json perf
// baselines — keeping one definition means `go test -bench` and the
// regression harness can never drift apart.
package acpsgd_test

import (
	"fmt"
	"testing"

	"acpsgd/internal/bench"
	"acpsgd/internal/exp"
)

// benchExp runs one registered experiment per iteration.
func benchExp(b *testing.B, id string) {
	b.Helper()
	opts := exp.ConvOptions{Epochs: 2, Workers: 2}
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(id, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per paper table / figure -----------------------------

func BenchmarkTableI(b *testing.B)  { benchExp(b, "table1") }
func BenchmarkTableII(b *testing.B) { benchExp(b, "table2") }
func BenchmarkFig2(b *testing.B)    { benchExp(b, "fig2") }
func BenchmarkFig3(b *testing.B)    { benchExp(b, "fig3") }
func BenchmarkFig5(b *testing.B)    { benchExp(b, "fig5") }

// BenchmarkFig6 and BenchmarkFig7 run the real convergence experiments at a
// reduced scale (2 epochs, 2 workers) so the full harness stays fast; use
// cmd/acpbench -exp fig6 -epochs 16 for the full-shape run.
func BenchmarkFig6(b *testing.B)        { benchExp(b, "fig6") }
func BenchmarkFig7(b *testing.B)        { benchExp(b, "fig7") }
func BenchmarkTableIII(b *testing.B)    { benchExp(b, "table3") }
func BenchmarkFig8(b *testing.B)        { benchExp(b, "fig8") }
func BenchmarkFig9(b *testing.B)        { benchExp(b, "fig9") }
func BenchmarkFig10(b *testing.B)       { benchExp(b, "fig10") }
func BenchmarkFig11a(b *testing.B)      { benchExp(b, "fig11a") }
func BenchmarkFig11b(b *testing.B)      { benchExp(b, "fig11b") }
func BenchmarkFig12(b *testing.B)       { benchExp(b, "fig12") }
func BenchmarkFig13(b *testing.B)       { benchExp(b, "fig13") }
func BenchmarkMicroFusion(b *testing.B) { benchExp(b, "micro") }

// --- real-substrate micro-benchmarks (internal/bench suite) --------------

// suite runs the named case from the shared micro-benchmark suite.
func suite(b *testing.B, name string) {
	b.Helper()
	c, err := bench.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	c.F(b)
}

func BenchmarkRingAllReduce4x64k(b *testing.B)     { suite(b, "RingAllReduce4x64k") }
func BenchmarkRingAllReduce8x64k(b *testing.B)     { suite(b, "RingAllReduce8x64k") }
func BenchmarkRingAllReduce4x1M(b *testing.B)      { suite(b, "RingAllReduce4x1M") }
func BenchmarkRingAllReduceAsync4x1M(b *testing.B) { suite(b, "RingAllReduceAsync4x1M") }

// BenchmarkTCPFrameCRC4x1M is the ring all-reduce over real loopback TCP,
// pricing the CRC32C-trailed wire path end to end (framing + checksum on
// send, verification on receive).
func BenchmarkTCPFrameCRC4x1M(b *testing.B) { suite(b, "TCPFrameCRC4x1M") }

// BenchmarkOverlapStep times one synchronized 2-worker training step on a
// latency-injected transport with the two comm-launch schedules: overlap=on
// (wait-free backprop) should beat overlap=off (launch after backward) by
// roughly the backward time that communication hides behind. Sub-benchmark
// names (on/off) match the suite case names acpbench -baseline records.
func BenchmarkOverlapStep(b *testing.B) {
	for _, mode := range bench.OverlapModes {
		b.Run(mode.String(), func(b *testing.B) { suite(b, "OverlapStep/"+mode.String()) })
	}
}

func BenchmarkPipelinedAllReduce4x1M(b *testing.B) { suite(b, "PipelinedAllReduce4x1M") }

// BenchmarkPipelinedStep times one synchronized 2-worker QSGD training step
// on an alpha-beta-injected transport across pipeline chunk counts:
// chunks>0 overlaps encode/wire/decode inside every fusion buffer and should
// beat the unpipelined chunks=0 replay baseline. Sub-benchmark names
// (chunks=N) match the suite case names acpbench -baseline records.
func BenchmarkPipelinedStep(b *testing.B) {
	for _, chunks := range bench.PipelineChunkCounts {
		name := fmt.Sprintf("chunks=%d", chunks)
		b.Run(name, func(b *testing.B) { suite(b, "PipelinedStep/"+name) })
	}
}

func BenchmarkAllGather4x64KB(b *testing.B) { suite(b, "AllGather4x64KB") }
func BenchmarkBroadcast4x256k(b *testing.B) { suite(b, "Broadcast4x256k") }

// Compressor kernels: encode throughput plus the fused 4-peer decode at 1M
// elements (the hottest un-hideable path per the paper's analysis).
func BenchmarkSignEncode1M(b *testing.B)       { suite(b, "SignEncode1M") }
func BenchmarkSignDecode1M(b *testing.B)       { suite(b, "SignDecode1M") }
func BenchmarkSignDecode4x1M(b *testing.B)     { suite(b, "SignDecode4x1M") }
func BenchmarkTopKExact1M(b *testing.B)        { suite(b, "TopKExact1M") }
func BenchmarkTopKSampled1M(b *testing.B)      { suite(b, "TopKSampled1M") }
func BenchmarkTopKDecode4x1M(b *testing.B)     { suite(b, "TopKDecode4x1M") }
func BenchmarkDGCEncode1M(b *testing.B)        { suite(b, "DGCEncode1M") }
func BenchmarkDGCDecode4x1M(b *testing.B)      { suite(b, "DGCDecode4x1M") }
func BenchmarkQSGDEncode1M(b *testing.B)       { suite(b, "QSGDEncode1M") }
func BenchmarkQSGDDecode4x1M(b *testing.B)     { suite(b, "QSGDDecode4x1M") }
func BenchmarkTernGradDecode4x1M(b *testing.B) { suite(b, "TernGradDecode4x1M") }

func BenchmarkPowerCompress512x512r4(b *testing.B) { suite(b, "PowerCompress512x512r4") }
func BenchmarkACPCompress512x512r4(b *testing.B)   { suite(b, "ACPCompress512x512r4") }

func BenchmarkOrthogonalize512x32(b *testing.B) { suite(b, "Orthogonalize512x32") }
func BenchmarkMatMul256(b *testing.B)           { suite(b, "MatMul256") }
func BenchmarkMatMulTA256x64(b *testing.B)      { suite(b, "MatMulTA256x64") }
func BenchmarkMatMulTB256(b *testing.B)         { suite(b, "MatMulTB256") }
func BenchmarkMiniVGGStep(b *testing.B)         { suite(b, "MiniVGGStep") }
func BenchmarkSimulateIteration(b *testing.B)   { suite(b, "SimulateBERTACP32") }

// BenchmarkFleetEngine1000 prices a 1000-node chaos scenario end to end —
// the fleet-scale scenario engine's perf gate (CI diffs it against the
// committed fleet baseline).
func BenchmarkFleetEngine1000(b *testing.B) { suite(b, "FleetEngine1000") }

// --- ablation benches (DESIGN.md §7) --------------------------------------

// BenchmarkAblationInterference sweeps the GPU interference rate and
// reports the resulting Power-SGD* time on BERT-Large: the knob behind the
// paper's §III-C WFBP slowdown. Sub-benchmark names (rate=0.35, ...) match
// the suite case names acpbench -baseline records.
func BenchmarkAblationInterference(b *testing.B) {
	for _, rate := range bench.InterferenceRates {
		name := bench.RateName(rate)
		b.Run(name, func(b *testing.B) { suite(b, "AblationInterference/"+name) })
	}
}

// BenchmarkAblationAlpha sweeps the per-hop latency and reports the ACP
// no-fusion time on BERT-Large: startup-cost sensitivity, the reason tensor
// fusion matters (§IV-B). Sub-benchmark names (alpha_us=12, ...) match the
// suite case names acpbench -baseline records.
func BenchmarkAblationAlpha(b *testing.B) {
	for _, alpha := range bench.AlphaSeconds {
		name := bench.AlphaName(alpha)
		b.Run(name, func(b *testing.B) { suite(b, "AblationAlpha/"+name) })
	}
}

// BenchmarkAblationEF compares ACP-SGD compression throughput with and
// without error feedback on the real compressor.
func BenchmarkAblationEF(b *testing.B) {
	for _, useEF := range []bool{true, false} {
		name := bench.EFName(useEF)
		b.Run(name, func(b *testing.B) { suite(b, "AblationEF/"+name) })
	}
}

// BenchmarkAblationSelection compares exact and multi-sampling top-k
// selection cost (footnote 2's motivation).
func BenchmarkAblationSelection(b *testing.B) {
	for _, sel := range bench.Selections {
		b.Run(sel.Name, func(b *testing.B) { suite(b, "AblationSelection/"+sel.Name) })
	}
}
