module acpsgd

go 1.24
